"""Tunable parameters of the CPU algorithms.

The CPU search space is genuinely different from the GPU's Table I
(:class:`repro.core.params.ParamOverrides`): instead of hash-table caps
and block-size ladders, the knobs are thread count, row-block
granularity and (for propagation blocking) the bin count.
:class:`CPUParams` mirrors the ``ParamOverrides`` API surface --
``is_default`` / ``switches`` / ``to_dict`` / ``from_dict`` /
``describe`` -- so the autotuner, the plan-cache keys and the persistent
tuning store treat both backends uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class CPUParams:
    """Tuned deviations from the CPU algorithms' built-in defaults.

    Every field defaults to ``None`` = "keep the derived value".
    Overrides only move chunking and binning boundaries -- the functional
    result is unchanged, which is what lets tuned configs stay
    bit-identical to the reference oracle.

    threads:
        Worker threads of every parallel region.  Defaults to all
        hardware threads (``cores * smt``); fewer threads trade
        parallelism for less SMT contention, more (capped at the
        hardware slots) is identity.
    block_rows:
        Rows per scheduling chunk of the row-parallel loops.  Small
        blocks load-balance skewed matrices; large blocks amortize the
        per-chunk scheduling overhead.
    bins:
        Column-range bin count of the propagation-blocking algorithm.
        More bins shrink each bin's merge working set (toward L2
        residency) but raise the propagate phase's scatter overhead.
    """

    threads: int | None = None
    block_rows: int | None = None
    bins: int | None = None

    def is_default(self) -> bool:
        """True when no field deviates from the derived defaults."""
        return all(getattr(self, f.name) is None for f in fields(self))

    def switches(self) -> tuple:
        """Canonical ``((field, value), ...)`` of the *set* fields only,
        sorted by name -- folded into plan-cache keys, so a tuned and an
        untuned run of the same pattern never share a plan."""
        return tuple(sorted(
            (f.name, getattr(self, f.name)) for f in fields(self)
            if getattr(self, f.name) is not None))

    def to_dict(self) -> dict:
        """JSON-representable form (set fields only; round-trips through
        :meth:`from_dict`)."""
        return {k: v for k, v in self.switches()}

    @classmethod
    def from_dict(cls, d: dict) -> "CPUParams":
        """Inverse of :meth:`to_dict`; unknown keys raise ``TypeError``."""
        return cls(**{k: int(v) for k, v in d.items()})

    def describe(self) -> str:
        """Compact human-readable form (``default`` when nothing is set)."""
        if self.is_default():
            return "default"
        return " ".join(f"{k}={v}" for k, v in self.switches())
