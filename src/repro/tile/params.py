"""Tunable parameters of the tile algorithm.

The tile family's knobs are genuinely different from both the GPU's
Table I space and the CPU's thread/block space: the tile edge fixes the
format itself, and the two density cutoffs drive step 2's per-tile
accumulator selection (dense array vs bitmap vs sorted list).
:class:`TileParams` mirrors the ``ParamOverrides`` / ``CPUParams`` API
surface -- ``is_default`` / ``switches`` / ``to_dict`` / ``from_dict`` /
``describe`` -- so the autotuner, plan-cache keys and the persistent
tuning store treat the third family uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: Built-in defaults (see :mod:`repro.tile.plan` resolvers).
DEFAULT_TILE_SIZE = 16
DEFAULT_DENSE_FRAC = 0.5
DEFAULT_LIST_FRAC = 0.125


@dataclass(frozen=True)
class TileParams:
    """Tuned deviations from the tile algorithm's built-in defaults.

    Every field defaults to ``None`` = "keep the built-in value".
    Overrides only move accumulator-selection boundaries and the tile
    edge -- the functional result is unchanged, which is what lets tuned
    configs stay bit-identical to the reference oracle.

    tile_size:
        Tile edge in rows/columns (2..64; default 16).  Larger tiles
        amortize per-tile metadata but dilute density on scattered
        patterns.  Not searched by the autotuner (it changes the tiled
        sketch itself); settable per instance.
    dense_frac:
        C-tile fill fraction at or above which step 2 picks the dense
        ``tile x tile`` accumulator (default 0.5).
    list_frac:
        C-tile fill fraction at or below which step 2 picks the sorted
        insertion list (default 0.125); between the cutoffs the bitmap
        accumulator is used.
    """

    tile_size: int | None = None
    dense_frac: float | None = None
    list_frac: float | None = None

    def is_default(self) -> bool:
        """True when no field deviates from the built-in defaults."""
        return all(getattr(self, f.name) is None for f in fields(self))

    def switches(self) -> tuple:
        """Canonical ``((field, value), ...)`` of the *set* fields only,
        sorted by name -- folded into plan-cache keys, so a tuned and an
        untuned run of the same pattern never share a plan."""
        return tuple(sorted(
            (f.name, getattr(self, f.name)) for f in fields(self)
            if getattr(self, f.name) is not None))

    def to_dict(self) -> dict:
        """JSON-representable form (set fields only; round-trips through
        :meth:`from_dict`)."""
        return {k: v for k, v in self.switches()}

    @classmethod
    def from_dict(cls, d: dict) -> "TileParams":
        """Inverse of :meth:`to_dict`; unknown keys raise ``TypeError``."""
        kwargs: dict = {}
        for k, v in d.items():
            kwargs[k] = int(v) if k == "tile_size" else float(v)
        return cls(**kwargs)

    def describe(self) -> str:
        """Compact human-readable form (``default`` when nothing is set)."""
        if self.is_default():
            return "default"
        return " ".join(f"{k}={v}" for k, v in self.switches())
