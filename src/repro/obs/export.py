"""Exporters: Chrome-trace JSON and the canonical golden-file summary.

:func:`chrome_trace` renders a :class:`~repro.gpu.timeline.SimReport`
into the Trace Event Format understood by ``chrome://tracing`` and
Perfetto: every CUDA stream becomes a named track of complete (``X``)
kernel slices, the phase charges become a ``phases`` track whose
per-phase duration totals equal ``SimReport.phase_seconds`` to float
round-off, device memory in use becomes a counter (``C``) series, and
grouping / hash / fault / resilience events become instants.  Kernel
records tagged with a pool device id (multi-device runs) are routed into
a separate Chrome *process* per device, and interconnect transfers
become slices on a dedicated ``interconnect`` track.

:func:`trace_summary` renders the same report as a stable, canonical
text document: fixed section order, sorted rows, microsecond timestamps
at nanosecond resolution.  Two runs of the same workload produce
byte-identical summaries, which is what the golden-trace regression
suite (``tests/test_goldens.py``) diffs against.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import TYPE_CHECKING, Any

from repro.obs import events as E
from repro.obs.metrics import metrics_from_report

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.gpu.timeline import SimReport

#: Chrome tid of the phase-charge track (streams are tid = stream + 1).
PHASE_TRACK = 0

#: Chrome tid of the plan-cache track (above any plausible stream count).
ENGINE_TRACK = 1000

#: Chrome tid of the interconnect track of a distributed run.
COMM_TRACK = 2000

#: Chrome tid of the autotuner track of a tuned run.
TUNE_TRACK = 3000

#: Chrome tid of the serving-layer track (server-clock events).
SERVE_TRACK = 4000

_INSTANT_KINDS = (E.GROUPING, E.HASH_STATS, E.FAULT, E.RUN_ABORT,
                  E.RESILIENCE, E.DIST_PANEL, E.DEVICE_LOST)

_CACHE_KINDS = (E.CACHE_HIT, E.CACHE_MISS, E.CACHE_EVICT)

_TUNE_KINDS = (E.TUNE_HIT, E.TUNE_MISS, E.TUNE_SEARCH, E.TUNE_APPLY)


def _us(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace(report: "SimReport") -> dict[str, Any]:
    """Trace Event Format document for one run (JSON-serializable)."""
    evs: list[dict[str, Any]] = []
    pid = 0
    evs.append({"ph": "M", "pid": pid, "tid": PHASE_TRACK,
                "name": "process_name",
                "args": {"name": f"{report.algorithm} on {report.matrix} "
                                 f"({report.precision}, {report.device})"}})
    evs.append({"ph": "M", "pid": pid, "tid": PHASE_TRACK,
                "name": "thread_name", "args": {"name": "phases"}})
    # multi-device runs: one Chrome process per pool device, so the
    # concurrent per-device timelines render as separate track groups
    device_pid = {d: i + 1 for i, d in enumerate(
        sorted({k.device for k in report.kernels if k.device}))}
    for d, dpid in device_pid.items():
        evs.append({"ph": "M", "pid": dpid, "tid": PHASE_TRACK,
                    "name": "process_name", "args": {"name": d}})
    for dpid, stream in sorted({(device_pid.get(k.device, pid), k.stream)
                                for k in report.kernels}):
        evs.append({"ph": "M", "pid": dpid, "tid": stream + 1,
                    "name": "thread_name",
                    "args": {"name": f"stream {stream}"}})
    if any(e.kind in _CACHE_KINDS for e in report.events):
        evs.append({"ph": "M", "pid": pid, "tid": ENGINE_TRACK,
                    "name": "thread_name", "args": {"name": "engine"}})
    if any(e.kind == E.COMM for e in report.events):
        evs.append({"ph": "M", "pid": pid, "tid": COMM_TRACK,
                    "name": "thread_name", "args": {"name": "interconnect"}})
    if any(e.kind in _TUNE_KINDS for e in report.events):
        evs.append({"ph": "M", "pid": pid, "tid": TUNE_TRACK,
                    "name": "thread_name", "args": {"name": "autotuner"}})
    if any(e.kind in E.SERVE_KINDS for e in report.events):
        evs.append({"ph": "M", "pid": pid, "tid": SERVE_TRACK,
                    "name": "thread_name", "args": {"name": "serve"}})

    for rec in report.kernels:
        evs.append({"ph": "X", "cat": "kernel", "name": rec.name,
                    "pid": device_pid.get(rec.device, pid),
                    "tid": rec.stream + 1,
                    "ts": _us(rec.start), "dur": _us(rec.duration),
                    "args": {"phase": rec.phase, "n_blocks": rec.n_blocks,
                             "block_seconds": rec.block_seconds}})

    for e in report.events:
        if e.kind == E.CHARGE:
            evs.append({"ph": "X", "cat": "phase", "name": e.name,
                        "pid": pid, "tid": PHASE_TRACK,
                        "ts": _us(e.ts),
                        "dur": _us(e.attrs.get("seconds", 0.0)),
                        "args": {"source": e.attrs.get("source", ""),
                                 "detail": e.attrs.get("detail", "")}})
        elif e.kind in (E.ALLOC, E.FREE):
            evs.append({"ph": "C", "cat": "memory", "name": "device_memory",
                        "pid": pid, "ts": _us(e.ts),
                        "args": {"in_use": e.attrs.get("in_use", 0)}})
        elif e.kind in _INSTANT_KINDS:
            evs.append({"ph": "i", "cat": e.kind, "name": e.name,
                        "pid": pid, "tid": PHASE_TRACK, "ts": _us(e.ts),
                        "s": "p", "args": dict(e.attrs)})
        elif e.kind in _CACHE_KINDS:
            evs.append({"ph": "i", "cat": e.kind, "name": e.name,
                        "pid": pid, "tid": ENGINE_TRACK, "ts": _us(e.ts),
                        "s": "p", "args": dict(e.attrs)})
        elif e.kind in _TUNE_KINDS:
            evs.append({"ph": "i", "cat": e.kind, "name": e.name,
                        "pid": pid, "tid": TUNE_TRACK, "ts": _us(e.ts),
                        "s": "p", "args": dict(e.attrs)})
        elif e.kind == E.COMM:
            evs.append({"ph": "X", "cat": "comm", "name": e.name,
                        "pid": pid, "tid": COMM_TRACK, "ts": _us(e.ts),
                        "dur": _us(e.attrs.get("seconds", 0.0)),
                        "args": dict(e.attrs)})
        elif e.kind in E.SERVE_KINDS:
            evs.append({"ph": "i", "cat": e.kind, "name": e.name,
                        "pid": pid, "tid": SERVE_TRACK, "ts": _us(e.ts),
                        "s": "p", "args": dict(e.attrs)})

    return {"traceEvents": evs, "displayTimeUnit": "ns",
            "otherData": {"algorithm": report.algorithm,
                          "matrix": report.matrix,
                          "precision": report.precision,
                          "device": report.device,
                          "total_seconds": report.total_seconds,
                          "peak_bytes": report.peak_bytes,
                          "complete": report.complete}}


def write_chrome_trace(report: "SimReport", path) -> None:
    """Serialize :func:`chrome_trace` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(report), fh, indent=1)


def serve_events_jsonl(events) -> str:
    """The serving layer's event stream as JSON lines.

    One JSON object per event (``ts`` / ``kind`` / ``name`` / ``attrs``),
    in emission order -- the replayable artifact the CI serve job uploads
    when the chaos harness fails, and the format the CLI's
    ``serve --log-jsonl`` writes.
    """
    out = []
    for e in events:
        out.append(json.dumps({"ts": e.ts, "kind": e.kind, "name": e.name,
                               "attrs": e.attrs}, sort_keys=True))
    return "\n".join(out) + ("\n" if out else "")


def write_serve_jsonl(events, path) -> None:
    """Serialize :func:`serve_events_jsonl` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(serve_events_jsonl(events))


def chrome_phase_totals(doc: dict[str, Any]) -> dict[str, float]:
    """Per-phase seconds recovered from an exported trace document.

    Sums the ``dur`` of the ``phases``-track slices; the acceptance check
    compares this against ``SimReport.phase_seconds`` to 1e-9.
    """
    out: dict[str, float] = {}
    for e in doc.get("traceEvents", []):
        if e.get("cat") == "phase" and e.get("ph") == "X":
            out[e["name"]] = out.get(e["name"], 0.0) + e["dur"] / 1e6
    return out


# ---------------------------------------------------------------------------
# canonical text summary (golden files)
# ---------------------------------------------------------------------------

def _tus(seconds: float) -> str:
    """Microseconds at nanosecond resolution: stable and review-friendly."""
    return f"{seconds * 1e6:.3f}"


def trace_summary(report: "SimReport") -> str:
    """Canonical text rendering of a run for golden-file comparison.

    The layout is versioned; bump the header when changing it so stale
    goldens fail with an explanation rather than a wall of diff.
    """
    lines = [
        "# repro trace summary v1",
        f"algorithm: {report.algorithm}",
        f"matrix: {report.matrix}",
        f"precision: {report.precision}",
        f"device: {report.device}",
        f"complete: {str(report.complete).lower()}",
        f"n_products: {report.n_products}",
        f"nnz_out: {report.nnz_out}",
        f"peak_bytes: {report.peak_bytes}",
        f"malloc_count: {report.malloc_count}",
        f"total_us: {_tus(report.total_seconds)}",
        "",
        "[phases]",
    ]
    comp: dict[str, dict[str, float]] = {}
    for e in report.events:
        if e.kind == E.CHARGE:
            by = comp.setdefault(e.name, {})
            src = e.attrs.get("source", "other")
            by[src] = by.get(src, 0.0) + e.attrs.get("seconds", 0.0)
    for p, dt in report.phase_seconds.items():
        parts = comp.get(p, {})
        detail = " ".join(f"{s}={_tus(parts[s])}" for s in sorted(parts))
        lines.append(f"phase {p} total_us={_tus(dt)}"
                     + (f" {detail}" if detail else ""))

    lines += ["", "[kernels]"]
    for rec in sorted(report.kernels,
                      key=lambda r: (r.start, r.device, r.stream, r.name)):
        name = f"{rec.device}:{rec.name}" if rec.device else rec.name
        lines.append(
            f"kernel {rec.phase} {name} stream={rec.stream} "
            f"start_us={_tus(rec.start)} dur_us={_tus(rec.duration)} "
            f"blocks={rec.n_blocks} busy_us={_tus(rec.block_seconds)}")

    grouping = [e for e in report.events if e.kind == E.GROUPING]
    if grouping:
        lines += ["", "[grouping]"]
        for e in grouping:
            a = e.attrs
            lines.append(
                f"grouping {e.name} g{a.get('group')} "
                f"assign={a.get('assign')} rows={a.get('rows')} "
                f"count_min={a.get('count_min')} count_max={a.get('count_max')}")

    hashes = [e for e in report.events if e.kind == E.HASH_STATS]
    if hashes:
        lines += ["", "[hash_tables]"]
        for e in hashes:
            a = e.attrs
            lines.append(
                f"hash {e.name} g{a.get('group')} tables={a.get('tables')} "
                f"entries={a.get('table_entries')} "
                f"load_mean={a.get('load_mean', 0.0):.4f} "
                f"load_max={a.get('load_max', 0.0):.4f}")

    lines += ["", "[memory]"]
    for e in report.events:
        if e.kind in (E.ALLOC, E.FREE):
            lines.append(f"{e.kind} {e.name} nbytes={e.attrs.get('nbytes')} "
                         f"in_use={e.attrs.get('in_use')}")

    cache = [e for e in report.events if e.kind in _CACHE_KINDS]
    if cache:
        lines += ["", "[plan_cache]"]
        for e in cache:
            attrs = " ".join(f"{k}={e.attrs[k]}" for k in sorted(e.attrs))
            lines.append(f"{e.kind} {e.name} {attrs}".rstrip())

    tune = [e for e in report.events if e.kind in _TUNE_KINDS]
    if tune:
        # conditional section: untuned runs (all pre-tune goldens) render
        # byte-identically to before
        lines += ["", "[tune]"]
        for e in tune:
            attrs = " ".join(f"{k}={e.attrs[k]}" for k in sorted(e.attrs))
            lines.append(f"{e.kind} {e.name} {attrs}".rstrip())

    comm = [e for e in report.events if e.kind == E.COMM]
    if comm:
        lines += ["", "[comm]"]
        for e in comm:
            a = e.attrs
            lines.append(
                f"comm {e.name} device={a.get('device')} "
                f"nbytes={a.get('nbytes')} link_us={_tus(a.get('seconds', 0.0))} "
                f"link={a.get('link')} cached={a.get('cached', False)}")
        lines.append(f"comm_total link_us="
                     f"{_tus(sum(e.attrs.get('seconds', 0.0) for e in comm))} "
                     f"wall_us={_tus(report.phase_seconds.get('comm', 0.0))}")

    panels = [e for e in report.events if e.kind == E.DIST_PANEL]
    if panels:
        lines += ["", "[dist]"]
        for e in panels:
            a = e.attrs
            lines.append(
                f"panel {e.name} rows={a.get('rows')} "
                f"[{a.get('lo')},{a.get('hi')}) products={a.get('n_products')} "
                f"nnz_out={a.get('nnz_out')} us={_tus(a.get('seconds', 0.0))} "
                f"critical={a.get('critical', False)}")

    extra = [e for e in report.events
             if e.kind in (E.FAULT, E.RUN_ABORT, E.RESILIENCE,
                           E.DEVICE_LOST)]
    if extra:
        lines += ["", "[incidents]"]
        for e in extra:
            attrs = " ".join(f"{k}={e.attrs[k]}" for k in sorted(e.attrs))
            lines.append(f"{e.kind} {e.name} {attrs}".rstrip())

    counts = Counter(e.kind for e in report.events)
    lines += ["", "[events]"]
    for kind in sorted(counts):
        lines.append(f"count {kind} {counts[kind]}")

    lines += ["", "[metrics]", metrics_from_report(report).render(), ""]
    return "\n".join(lines)
