#!/usr/bin/env python
"""Memory planning: which SpGEMM library fits your matrix on a 16 GB GPU?

The paper's second contribution is memory frugality: Table III shows CUSP
and BHSPARSE failing outright on cage15 and wb-edu because their
temporaries exceed the P100's 16 GB.  This script uses the full-scale
analytic memory model to plan every Table II / Table III matrix at *paper*
scale: estimated peak per algorithm, whether it fits, and the largest
multiple of the matrix each algorithm could still handle.

Run:  python examples/memory_planning.py
"""

from repro.bench.datasets import DATASETS, LARGE_GRAPHS
from repro.bench.memory_model import FullScaleArrays, PEAK_FUNCTIONS
from repro.gpu.device import P100
from repro.types import Precision

ALGS = ("cusp", "cusparse", "bhsparse", "proposal")


def main() -> None:
    capacity = P100.global_mem_bytes
    print(f"device: {P100.name} ({capacity / 2**30:.0f} GiB)\n")
    print("estimated full-scale peak memory, single precision [GiB] "
          "(x = does not fit):\n")
    print(f"{'Matrix':<18}" + "".join(f"{a:>12}" for a in ALGS)
          + f"{'headroom':>12}")

    for ds in list(DATASETS.values()) + list(LARGE_GRAPHS.values()):
        fs = FullScaleArrays(ds)
        cells = []
        for a in ALGS:
            peak = PEAK_FUNCTIONS[a](fs, Precision.SINGLE)
            mark = " " if peak <= capacity else "x"
            cells.append(f"{peak / 2**30:>10.2f} {mark}")
        ours = PEAK_FUNCTIONS["proposal"](fs, Precision.SINGLE)
        headroom = capacity / ours
        print(f"{ds.name:<18}" + "".join(cells) + f"{headroom:>11.1f}x")

    print("\nreading the table:")
    print(" * cage15 / wb-edu: CUSP's expansion (one triple per")
    print("   intermediate product) and BHSPARSE's upper-bound output")
    print("   allocation exceed the device -- the '-' entries of Table III;")
    print(" * the proposal's only overhead beyond inputs + output is three")
    print("   4-byte-per-row arrays plus Group-0 hash tables, so it keeps")
    print("   several-fold headroom even on the billion-product graphs.")


if __name__ == "__main__":
    main()
