"""Tile-subsystem conformance suite (``pytest -m tile``).

Covers the `TiledCSR` format (round-trip bit-identity, monotone
offsets, mask consistency -- Hypothesis-driven), the `TileSpGEMM`
pipeline (oracle bit-identity on every structured workload, the
no-global-atomics invariant, engine plan replay, composition with the
resilience/tune/dist wrappers), the tile tuning family, the E22
crossover selector, and the structured-generator properties (N:M
exactness, block-diagonal band bounds, GNN adjacency symmetry).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro
from repro import SpGEMMOptions
from repro.bench.datasets import WORKLOADS, get_workload
from repro.errors import SparseFormatError
from repro.gpu.device import P100
from repro.sparse import generators as G
from repro.sparse.coo import COOMatrix
from repro.sparse.product import product_for
from repro.sparse.reference import spgemm_reference
from repro.tile import TileParams, TileSpGEMM, TiledCSR
from repro.tile.plan import (build_pipeline_kernels, candidate_space,
                             modeled_tile_total, select_algorithm,
                             sketch_tiles, tile_stats)
from repro.types import Precision

pytestmark = pytest.mark.tile

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def csr_matrices(draw, max_dim=48, max_nnz=160):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(hnp.arrays(np.int64, nnz,
                           elements=st.integers(0, n_rows - 1)))
    cols = draw(hnp.arrays(np.int64, nnz,
                           elements=st.integers(0, n_cols - 1)))
    vals = draw(hnp.arrays(np.float64, nnz,
                           elements=st.floats(-8, 8, allow_nan=False,
                                              width=32)))
    return COOMatrix(rows, cols, vals, (n_rows, n_cols)).to_csr()


@pytest.fixture
def square():
    return G.random_csr(300, 300, 8, rng=42)


# -- TiledCSR format ----------------------------------------------------------


class TestTiledCSR:
    @given(A=csr_matrices(), tile=st.sampled_from([2, 3, 8, 16, 64]))
    @SETTINGS
    def test_round_trip_bit_identical(self, A, tile):
        t = TiledCSR.from_csr(A, tile)
        back = t.to_csr()
        assert np.array_equal(back.rpt, A.rpt)
        assert np.array_equal(back.col, A.col)
        assert np.array_equal(back.val, A.val)

    @given(A=csr_matrices(), tile=st.sampled_from([4, 16]))
    @SETTINGS
    def test_offsets_monotone_and_consistent(self, A, tile):
        t = TiledCSR.from_csr(A, tile)
        assert (np.diff(t.tile_off) > 0).all()       # no empty stored tile
        assert t.tile_off[0] == 0 and t.tile_off[-1] == A.nnz
        assert (np.diff(t.tile_rpt) >= 0).all()
        assert t.tile_rpt[-1] == t.n_tiles
        # local coordinates stay inside the tile
        assert t.ent_row.max(initial=0) < tile
        assert t.ent_col.max(initial=0) < tile

    @given(A=csr_matrices(), tile=st.sampled_from([4, 16]))
    @SETTINGS
    def test_masks_match_entries(self, A, tile):
        t = TiledCSR.from_csr(A, tile)
        for i in range(t.n_tiles):
            lo, hi = t.tile_off[i], t.tile_off[i + 1]
            rm = np.bitwise_or.reduce(
                np.uint64(1) << t.ent_row[lo:hi].astype(np.uint64))
            cm = np.bitwise_or.reduce(
                np.uint64(1) << t.ent_col[lo:hi].astype(np.uint64))
            assert t.row_mask[i] == rm
            assert t.col_mask[i] == cm

    def test_tile_size_bounds(self, square):
        with pytest.raises(SparseFormatError):
            TiledCSR.from_csr(square, 1)
        with pytest.raises(SparseFormatError):
            TiledCSR.from_csr(square, 65)

    def test_device_bytes_smaller_entries_than_csr(self, square):
        # the 1-byte local coordinates undercut CSR's 4-byte columns on
        # dense-tile patterns (the format's memory saving)
        A = G.block_diagonal(256, 16, rng=3)
        t = TiledCSR.from_csr(A, 16)
        p = Precision.DOUBLE
        assert t.device_bytes(p) < A.device_bytes(p)


# -- the tile algorithm -------------------------------------------------------


class TestTileAlgorithm:
    def test_oracle_bit_identity(self, square):
        res = TileSpGEMM().multiply(square, square, precision="double")
        ref = spgemm_reference(square, square)
        assert np.array_equal(res.matrix.rpt, ref.rpt)
        assert np.array_equal(res.matrix.col, ref.col)
        assert np.array_equal(res.matrix.val, ref.val)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_oracle_identity_on_all_workloads(self, name):
        A, B = get_workload(name).matrices()
        res = TileSpGEMM().multiply(A, B, precision="single")
        ref = spgemm_reference(A, B)
        mine = res.matrix
        assert np.array_equal(mine.rpt, ref.rpt)
        assert np.array_equal(mine.col, ref.col)
        np.testing.assert_allclose(mine.val, ref.val, rtol=1e-4)

    def test_rectangular(self):
        A = G.random_csr(30, 50, 5, rng=5)
        B = G.random_csr(50, 25, 4, rng=6)
        res = TileSpGEMM().multiply(A, B)
        ref = spgemm_reference(A, B)
        assert np.array_equal(res.matrix.col, ref.col)
        assert np.array_equal(res.matrix.val, ref.val)

    def test_no_global_atomics_anywhere(self, square):
        # THE family invariant: every pipeline kernel is atomic-free
        rp, C = product_for(square, square, Precision.DOUBLE)
        stats = tile_stats(square, square, C, rp, TileParams())
        kernels = build_pipeline_kernels(stats, 16, Precision.DOUBLE, P100)
        flat = list(kernels["conversion"]) + [
            kernels[k] for k in ("match", "select", "numeric", "assemble")]
        assert len([k for k in flat if k is not None]) >= 5
        for k in flat:
            if k is not None:
                assert k.works.totals().gmem_atomics == 0, k.name
        # contrast: the hash proposal's numeric phase does use atomics
        hash_res = repro.multiply(
            square, square, options=SpGEMMOptions(algorithm="proposal"))
        assert any("hash" in k.name or "numeric" in k.name
                   for k in hash_res.report.kernels)

    def test_conversion_charged_to_timeline(self, square):
        res = TileSpGEMM().multiply(square, square)
        names = [k.name for k in res.report.kernels]
        assert "tile_convert_a" in names and "tile_convert_b" in names
        assert res.report.phase_seconds["setup"] > 0

    def test_params_change_plan_switches(self):
        a = TileSpGEMM()
        b = TileSpGEMM(params=TileParams(dense_frac=0.25))
        assert a.plan_switches() != b.plan_switches()

    def test_declines_foreign_overrides(self):
        from repro.core.params import ParamOverrides
        from repro.cpu.params import CPUParams

        alg = TileSpGEMM()
        assert not alg.apply_param_overrides(ParamOverrides())
        assert not alg.apply_param_overrides(CPUParams())
        assert alg.apply_param_overrides(TileParams(tile_size=8))
        assert alg.params.tile_size == 8
        assert alg.apply_param_overrides(None)
        assert alg.params.is_default()

    def test_tile_size_override_runs(self, square):
        res = TileSpGEMM(params=TileParams(tile_size=8)).multiply(
            square, square)
        ref = spgemm_reference(square, square)
        assert np.array_equal(res.matrix.val, ref.val)


class TestTileParams:
    def test_round_trip(self):
        p = TileParams(tile_size=8, dense_frac=0.75)
        assert TileParams.from_dict(p.to_dict()) == p
        assert TileParams.from_dict(TileParams().to_dict()).is_default()

    def test_describe(self):
        assert TileParams().describe() == "default"
        assert "list_frac" in TileParams(list_frac=0.25).describe()


# -- composition through the existing seams -----------------------------------


class TestComposition:
    def test_engine_replay_bit_identical_and_faster(self, square):
        res = repro.multiply(square, square, options=SpGEMMOptions(
            algorithm="tile", engine=True))
        hit = repro.multiply(square, square, options=SpGEMMOptions(
            algorithm="tile", engine=True))
        # fresh engines don't share caches; drive one engine directly
        from repro.engine.engine import SpGEMMEngine

        eng = SpGEMMEngine(algorithm="tile")
        cold = eng.multiply(square, square)
        warm = eng.multiply(square, square)
        assert np.array_equal(warm.matrix.val, cold.matrix.val)
        assert np.array_equal(warm.matrix.col, cold.matrix.col)
        assert warm.report.total_seconds < cold.report.total_seconds
        kinds = [e.kind for e in warm.report.events]
        assert "cache_hit" in kinds
        assert res.report.nnz_out == hit.report.nnz_out

    def test_resilient_wrapper(self, square):
        res = repro.multiply(square, square, options=SpGEMMOptions(
            algorithm="tile", resilient=True))
        ref = spgemm_reference(square, square)
        assert np.array_equal(res.matrix.val, ref.val)

    def test_tuned_tile_uses_tile_family(self, square):
        from repro.tune.tuned import TunedSpGEMM

        t = TunedSpGEMM(algorithm="tile", store_path=None)
        res = t.multiply(square, square)
        ref = spgemm_reference(square, square)
        assert np.array_equal(res.matrix.val, ref.val)
        assert isinstance(t.last_overrides(), TileParams)

    def test_fallback_chain(self):
        from repro.options import _fallback_chain

        assert _fallback_chain("tile") == ("tile", "cusparse")

    def test_cpu_translates_tile_to_native(self):
        from repro.backend import backends

        cpu = backends()["cpu"]
        assert cpu.native_algorithm("tile") == cpu.default_algorithm

    def test_dist_pool_runs_tile(self, square):
        res = repro.multiply(square, square, options=SpGEMMOptions(
            algorithm="tile", devices=("P100", "P100")))
        ref = spgemm_reference(square, square)
        assert np.array_equal(res.matrix.val, ref.val)


# -- tuning family ------------------------------------------------------------


class TestTileTuning:
    def test_backend_has_two_families(self):
        from repro.backend import backends

        fams = backends()["gpu"].tuning_families(P100)
        assert [f.family for f in fams] == ["gpu", "tile"]

    def test_sketch_digest_distinct_from_hash_family(self, square):
        from repro.tune.sketch import sketch_matrix

        assert (sketch_tiles(square, square).digest()
                != sketch_matrix(square, square).digest())

    def test_sketch_digest_deterministic(self, square):
        assert (sketch_tiles(square, square).digest()
                == sketch_tiles(square, square).digest())

    def test_candidate_space_default_first(self):
        cands = candidate_space(P100)
        assert cands[0].is_default()
        assert len({c.switches() for c in cands}) == len(cands)

    def test_modeled_total_finite_and_ranks(self, square):
        sk = sketch_tiles(square, square)
        scores = [modeled_tile_total(sk, P100, Precision.DOUBLE, ov)
                  for ov in candidate_space(P100)]
        assert all(np.isfinite(s) and s > 0 for s in scores)
        # a foreign tile edge cannot be scored on this sketch
        assert modeled_tile_total(
            sk, P100, Precision.DOUBLE,
            TileParams(tile_size=8)) == float("inf")
        # inverted cutoffs are infeasible
        assert modeled_tile_total(
            sk, P100, Precision.DOUBLE,
            TileParams(dense_frac=0.1, list_frac=0.9)) == float("inf")


# -- E22 crossover ------------------------------------------------------------


class TestCrossover:
    @pytest.mark.corpus
    def test_selector_agrees_with_measurement_per_class(self):
        from repro.baselines.registry import create

        wins = {}
        for name, w in sorted(WORKLOADS.items()):
            A, B = w.matrices()
            t = TileSpGEMM().multiply(A, B, precision="single")
            h = create("proposal").multiply(A, B, precision="single")
            measured = ("tile" if t.report.total_seconds
                        < h.report.total_seconds else "proposal")
            chosen, _, _ = select_algorithm(A, B, P100, "single")
            assert chosen == measured, (name, chosen, measured)
            wins[w.wclass] = measured
            w.drop()
        # the honest crossover: at least one class on each side
        assert "tile" in wins.values()
        assert "proposal" in wins.values()

    def test_structured_classes_favor_tile_in_model(self):
        A, B = get_workload("nm-2:4").matrices()
        chosen, tile_s, hash_s = select_algorithm(A, B, P100, "single")
        assert chosen == "tile" and tile_s < hash_s
        get_workload("nm-2:4").drop()

    def test_powerlaw_favors_hash_in_model(self):
        A, B = get_workload("web-powerlaw").matrices()
        chosen, tile_s, hash_s = select_algorithm(A, B, P100, "single")
        assert chosen == "proposal" and hash_s < tile_s
        get_workload("web-powerlaw").drop()


# -- structured generators ----------------------------------------------------


class TestStructuredGenerators:
    @given(n_rows=st.integers(1, 40), groups=st.integers(1, 10),
           n=st.integers(1, 4), seed=st.integers(0, 2**31 - 1))
    @SETTINGS
    def test_nm_exactness(self, n_rows, groups, n, seed):
        m = 4
        n = min(n, m)
        A = G.nm_structured(n_rows, groups * m, n, m, rng=seed)
        assert (A.row_nnz() == groups * n).all()
        rows = np.repeat(np.arange(n_rows), A.row_nnz())
        # exactly n nonzeros in every group of m columns of every row
        per_group = np.bincount(rows * groups + A.col // m,
                                minlength=n_rows * groups)
        assert (per_group == n).all()

    def test_nm_validation(self):
        with pytest.raises(ValueError):
            G.nm_structured(4, 10, 2, 4, rng=0)     # 10 % 4 != 0
        with pytest.raises(ValueError):
            G.nm_structured(4, 8, 5, 4, rng=0)      # n > m

    @given(n=st.integers(1, 80), block=st.integers(1, 20),
           fill=st.floats(0.1, 1.0), seed=st.integers(0, 2**31 - 1))
    @SETTINGS
    def test_block_diagonal_band_bound(self, n, block, fill, seed):
        A = G.block_diagonal(n, block, fill=fill, rng=seed)
        block = max(1, min(block, n))
        rows = np.repeat(np.arange(n), A.row_nnz())
        assert (rows // block == A.col // block).all()
        assert (A.row_nnz() >= 1).all()             # diagonal kept

    @given(n=st.integers(2, 60), deg=st.floats(0.0, 8.0),
           seed=st.integers(0, 2**31 - 1))
    @SETTINGS
    def test_gnn_adjacency_symmetry(self, n, deg, seed):
        A = G.gnn_adjacency(n, deg, rng=seed)
        rows = np.repeat(np.arange(n), A.row_nnz())
        order = np.lexsort((rows, A.col))
        # transpose == original, pattern AND values, bit for bit
        assert np.array_equal(A.col[order], rows)
        assert np.array_equal(rows[order], A.col)
        assert np.array_equal(A.val[order], A.val)

    def test_feature_blocks_aligned(self):
        A = G.feature_blocks(50, 128, 16, rng=11)
        assert A.shape == (50, 128)
        assert (A.row_nnz() >= 16).all()
