"""Real-seconds smoke tests for the vectorized core (``-m perf``).

Tier-1 stays wall-clock-free; these tests run only under ``-m perf``
(the CI perf job) and hold two properties:

* the E16 iterative mini-suite completes under a *generous* real-seconds
  ceiling -- a smoke alarm for order-of-magnitude regressions, not a
  benchmark (the calibrated 1.5x fence lives in the SCHEMA-5 slice of
  ``benchmarks/regression.py``);
* the unobserved fast path (``SpGEMMOptions(observe=False)`` /
  ``observe_runs(False)``) emits *zero* events while the observed run of
  the same multiply emits the full stream with identical results and
  identical modeled seconds.
"""

import time

import numpy as np
import pytest

import repro
from repro import perf
from repro.bench.wallclock import e16_iterative_pass
from repro.obs.events import observe_runs
from repro.sparse import generators

pytestmark = pytest.mark.perf

#: Generous ceiling: the suite runs in ~0.15 s on the CI container; a
#: 20x margin keeps slow shared runners from flaking while still
#: catching a return to per-row scalar behavior (~0.9 s) times any
#: plausible machine factor.
E16_CEILING_SECONDS = 3.0


def test_e16_mini_suite_under_ceiling():
    perf.clear_fast_caches()
    start = time.perf_counter()
    e16_iterative_pass()
    elapsed = time.perf_counter() - start
    assert elapsed < E16_CEILING_SECONDS, \
        f"E16 iterative pass took {elapsed:.3f}s (ceiling {E16_CEILING_SECONDS}s)"


def _pair(A, *, observe: bool):
    perf.clear_fast_caches()
    opts = repro.SpGEMMOptions(algorithm="proposal", observe=observe)
    return repro.multiply(A, A, options=opts)


def test_unobserved_emits_zero_events():
    A = generators.banded(300, 10, rng=np.random.default_rng(3))
    observed = _pair(A, observe=True)
    silent = _pair(A, observe=False)

    assert len(observed.report.events) > 0
    assert silent.report.events == []

    # silence is free of semantic cost: same matrix, same modeled time
    assert np.array_equal(observed.matrix.rpt, silent.matrix.rpt)
    assert np.array_equal(observed.matrix.col, silent.matrix.col)
    assert np.array_equal(observed.matrix.val, silent.matrix.val)
    assert observed.report.total_seconds == silent.report.total_seconds
    assert observed.report.phase_seconds == silent.report.phase_seconds


def test_observe_runs_ambient_flag():
    A = generators.banded(200, 8, rng=np.random.default_rng(4))
    perf.clear_fast_caches()
    with observe_runs(False):
        r = repro.multiply(A, A)
    assert r.report.events == []
    perf.clear_fast_caches()
    r2 = repro.multiply(A, A)
    assert len(r2.report.events) > 0
    assert r.report.total_seconds == r2.report.total_seconds
