"""MatrixMarket reader/writer tests."""

import gzip

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse import generators
from repro.sparse.io import read_matrix_market, write_matrix_market


def test_round_trip(tmp_path, rng):
    m = generators.random_csr(40, 30, 5, rng=rng)
    path = tmp_path / "m.mtx"
    write_matrix_market(path, m, comment="round trip")
    back = read_matrix_market(path)
    assert back.allclose(m, rtol=1e-12)


def test_round_trip_preserves_shape_with_empty_rows(tmp_path):
    from repro.sparse.csr import CSRMatrix

    m = CSRMatrix(np.array([0, 0, 1, 1]), np.array([2]), np.array([5.0]),
                  (3, 4))
    path = tmp_path / "e.mtx"
    write_matrix_market(path, m)
    back = read_matrix_market(path)
    assert back.shape == (3, 4)
    assert back.to_dense()[1, 2] == 5.0


def _write(path, text):
    path.write_text(text, encoding="ascii")


def test_symmetric_expansion(tmp_path):
    _write(tmp_path / "s.mtx", "\n".join([
        "%%MatrixMarket matrix coordinate real symmetric",
        "3 3 3",
        "1 1 2.0",
        "2 1 5.0",
        "3 3 1.0",
    ]) + "\n")
    m = read_matrix_market(tmp_path / "s.mtx")
    dense = m.to_dense()
    assert dense[0, 1] == 5.0 and dense[1, 0] == 5.0
    assert m.nnz == 4  # diagonal entries not mirrored


def test_pattern_field(tmp_path):
    _write(tmp_path / "p.mtx", "\n".join([
        "%%MatrixMarket matrix coordinate pattern general",
        "2 2 2",
        "1 2",
        "2 1",
    ]) + "\n")
    m = read_matrix_market(tmp_path / "p.mtx")
    assert m.nnz == 2
    np.testing.assert_array_equal(m.to_dense(), [[0, 1], [1, 0]])


def test_integer_field(tmp_path):
    _write(tmp_path / "i.mtx", "\n".join([
        "%%MatrixMarket matrix coordinate integer general",
        "1 1 1",
        "1 1 7",
    ]) + "\n")
    assert read_matrix_market(tmp_path / "i.mtx").val[0] == 7.0


def test_comments_skipped(tmp_path):
    _write(tmp_path / "c.mtx", "\n".join([
        "%%MatrixMarket matrix coordinate real general",
        "% a comment",
        "% another",
        "1 1 1",
        "1 1 3.5",
    ]) + "\n")
    assert read_matrix_market(tmp_path / "c.mtx").val[0] == 3.5


def test_duplicates_summed(tmp_path):
    _write(tmp_path / "d.mtx", "\n".join([
        "%%MatrixMarket matrix coordinate real general",
        "1 1 2",
        "1 1 1.0",
        "1 1 2.5",
    ]) + "\n")
    assert read_matrix_market(tmp_path / "d.mtx").val[0] == 3.5


def test_gzip_supported(tmp_path, rng):
    m = generators.random_csr(10, 10, 3, rng=rng)
    plain = tmp_path / "m.mtx"
    write_matrix_market(plain, m)
    gz = tmp_path / "m.mtx.gz"
    gz.write_bytes(gzip.compress(plain.read_bytes()))
    assert read_matrix_market(gz).allclose(m, rtol=1e-12)


class TestErrors:
    def test_missing_header(self, tmp_path):
        _write(tmp_path / "x.mtx", "1 1 1\n1 1 1.0\n")
        with pytest.raises(SparseFormatError, match="header"):
            read_matrix_market(tmp_path / "x.mtx")

    def test_array_format_rejected(self, tmp_path):
        _write(tmp_path / "x.mtx",
               "%%MatrixMarket matrix array real general\n1 1\n1.0\n")
        with pytest.raises(SparseFormatError, match="coordinate"):
            read_matrix_market(tmp_path / "x.mtx")

    def test_complex_field_rejected(self, tmp_path):
        _write(tmp_path / "x.mtx",
               "%%MatrixMarket matrix coordinate complex general\n"
               "1 1 1\n1 1 1.0 0.0\n")
        with pytest.raises(SparseFormatError, match="field"):
            read_matrix_market(tmp_path / "x.mtx")

    def test_truncated_body(self, tmp_path):
        _write(tmp_path / "x.mtx",
               "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")
        with pytest.raises(SparseFormatError, match="tokens"):
            read_matrix_market(tmp_path / "x.mtx")

    def test_precision_on_read(self, tmp_path, rng):
        m = generators.random_csr(5, 5, 2, rng=rng)
        write_matrix_market(tmp_path / "m.mtx", m)
        single = read_matrix_market(tmp_path / "m.mtx", precision="single")
        assert single.dtype == np.float32
