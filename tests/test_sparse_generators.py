"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.sparse import generators as G
from repro.sparse.validate import validate_csr


ALL = [
    ("random_csr", lambda rng: G.random_csr(200, 200, 8, rng=rng)),
    ("banded", lambda rng: G.banded(200, 10, rng=rng)),
    ("block_dense", lambda rng: G.block_dense(96, 16, rng=rng)),
    ("stencil", lambda rng: G.stencil_regular(200, 5, rng=rng)),
    ("power_law", lambda rng: G.power_law(300, 4.0, 60, rng=rng)),
    ("rmat", lambda rng: G.rmat(8, 4, rng=rng)),
    ("poisson2d", lambda rng: G.poisson2d(10)),
    ("diag_plus", lambda rng: G.diagonal_plus_random(150, 3.0, rng=rng)),
]


@pytest.mark.parametrize("name,gen", ALL, ids=[a for a, _ in ALL])
class TestAllGenerators:
    def test_structurally_valid(self, name, gen, rng):
        validate_csr(gen(rng))  # raises on failure

    def test_canonical(self, name, gen, rng):
        assert gen(rng).is_canonical()

    def test_deterministic_under_seed(self, name, gen):
        a = gen(np.random.default_rng(7))
        b = gen(np.random.default_rng(7))
        assert a.allclose(b)

    def test_values_nonzero(self, name, gen, rng):
        m = gen(rng)
        if name == "poisson2d":   # signed Laplacian stencil by design
            assert np.all(m.val != 0)
        else:
            # positive values guarantee no accidental cancellation in tests
            assert np.all(m.val > 0)


class TestSpecificShapes:
    def test_random_csr_density(self, rng):
        m = G.random_csr(500, 500, 10, rng=rng)
        assert 8.0 <= m.nnz / m.n_rows <= 10.5   # dedup loses a little

    def test_banded_locality(self, rng):
        m = G.banded(300, 10, bandwidth=15, rng=rng)
        rows = np.repeat(np.arange(m.n_rows), m.row_nnz())
        spread = np.abs(rows - m.col)
        # overwhelmingly near-diagonal
        assert np.quantile(spread, 0.95) < 60

    def test_banded_has_diagonal(self, rng):
        m = G.banded(100, 6, rng=rng)
        dense = m.to_dense()
        assert np.all(np.diag(dense) > 0)

    def test_block_dense_blocks_full(self, rng):
        m = G.block_dense(32, 8, coupling=0.0, rng=rng)
        dense = m.to_dense()
        assert np.all(dense[:8, :8] > 0)
        assert np.all(dense[:8, 8:16] == 0)

    def test_stencil_exact_degree(self, rng):
        m = G.stencil_regular(400, 7, rng=rng)
        np.testing.assert_array_equal(m.row_nnz(), np.full(400, 7))

    def test_stencil_max_equals_mean(self, rng):
        # the Epidemiology property of Table II: max nnz/row == mean
        m = G.stencil_regular(1000, 4, rng=rng)
        assert m.row_nnz().max() == 4 and m.row_nnz().min() == 4

    def test_power_law_forces_max_row(self, rng):
        m = G.power_law(1000, 3.0, 200, rng=rng)
        assert m.row_nnz().max() >= 150     # dedup can trim a few
        assert m.nnz / m.n_rows < 10

    def test_rmat_shape(self, rng):
        m = G.rmat(7, 8, rng=rng)
        assert m.n_rows == 128
        assert m.nnz <= 128 * 8

    def test_poisson2d_is_laplacian(self):
        m = G.poisson2d(5)
        dense = m.to_dense()
        np.testing.assert_allclose(dense, dense.T)
        assert np.all(np.diag(dense) == 4.0)
        np.testing.assert_array_less(np.abs(np.linalg.eigvalsh(dense)[0]),
                                     1e-8 + 8.0)

    def test_poisson2d_rectangular_grid(self):
        m = G.poisson2d(4, 6)
        assert m.shape == (24, 24)
        # interior point has 5 nnz
        assert m.row_nnz().max() == 5

    def test_diag_plus_random_has_full_diagonal(self, rng):
        m = G.diagonal_plus_random(80, 2.0, rng=rng)
        assert np.all(np.diag(m.to_dense()) > 0)

    def test_precision_option(self, rng):
        m = G.banded(50, 4, rng=rng, precision="single")
        assert m.dtype == np.float32
