"""Benchmark harness: datasets, runner, memory model, table/figure renderers.

One module per concern:

* :mod:`repro.bench.datasets` -- the Table II matrix analogues and the
  three large graph analogues, with full-scale paper statistics attached.
* :mod:`repro.bench.runner` -- run algorithms over datasets, collect
  :class:`~repro.gpu.timeline.SimReport` objects, render the paper's
  tables and figure series as text.
* :mod:`repro.bench.memory_model` -- full-scale analytic peak-memory
  estimates (Figure 4 ratios, Table III out-of-memory entries).
"""

from repro.bench.datasets import (DATASETS, LARGE_GRAPHS, TABLE2, Dataset,
                                  PaperStats, get_dataset)
from repro.bench.profile import profile_call, profiled, render_stats
from repro.bench.runner import BenchRun, run_suite
from repro.bench.wallclock import WallClockStat, run_wallclock_suite

__all__ = [
    "DATASETS",
    "LARGE_GRAPHS",
    "TABLE2",
    "BenchRun",
    "Dataset",
    "PaperStats",
    "WallClockStat",
    "get_dataset",
    "profile_call",
    "profiled",
    "render_stats",
    "run_suite",
    "run_wallclock_suite",
]
