"""Discrete-event simulation of chunk dispatch onto hardware threads.

The CPU analogue of :mod:`repro.gpu.scheduler`: each kernel is a
parallel region whose chunks (``n_blocks``) are dispatched FIFO onto
free hardware-thread slots, capped by the region's own worker count.  A
single monster row-block therefore holds one thread hostage while the
rest drain -- the same load-imbalance pathology the GPU model exhibits,
and the reason the CPU algorithms chunk rows finely.

Stream semantics mirror CUDA's so the shared :class:`~repro.base.
RunContext` accounting holds on both backends: kernels on the same
stream serialize in issue order (a dependency chain), different streams
co-schedule when thread slots allow, and ``use_streams=False`` forces
full serialization.  Issue costs one fork/join (``fork_join_us``).

The loop is deliberately simple -- one fungible resource (thread slots)
instead of the GPU's per-SM threads/shared/blocks triple -- and runs
unmemoized: CPU phases have at most a few hundred chunks.
"""

from __future__ import annotations

import heapq
from bisect import insort

from repro.cpu.cost import chunk_durations, workers_for
from repro.cpu.device import CPUSpec
from repro.errors import HashTableError, SchedulerError
from repro.gpu.faults import FaultPlan
from repro.gpu.kernel import KernelLaunch
from repro.gpu.scheduler import MAX_EVENTS, PhaseSchedule
from repro.gpu.timeline import KernelRecord
from repro.types import Precision


class _RegionState:
    __slots__ = ("index", "kernel", "durations", "workers", "next_chunk",
                 "running", "done", "first_start", "finish")

    def __init__(self, index: int, kernel: KernelLaunch, durations,
                 spec: CPUSpec) -> None:
        self.index = index
        self.kernel = kernel
        self.durations = durations
        self.workers = workers_for(kernel, spec)
        self.next_chunk = 0
        self.running = 0
        self.done = 0
        self.first_start: float | None = None
        self.finish: float | None = None

    @property
    def n_chunks(self) -> int:
        return len(self.durations)

    @property
    def dispatch_complete(self) -> bool:
        return self.next_chunk >= self.n_chunks


def simulate_cpu_phase(kernels: list[KernelLaunch], spec: CPUSpec,
                       precision: Precision | str, *,
                       start_time: float = 0.0, use_streams: bool = True,
                       faults: FaultPlan | None = None) -> PhaseSchedule:
    """Simulate the concurrent execution of ``kernels`` on ``spec``.

    Pure function of its inputs (fault plans are stateful and always
    checked first, exactly as the GPU scheduler does): deterministic
    timestamps, one :class:`KernelRecord` per region.
    """
    if not kernels:
        return PhaseSchedule(start=start_time, end=start_time, records=[])

    if faults is not None:
        for k in kernels:
            event = faults.check_kernel(k.name)
            if event is not None:
                raise HashTableError(
                    f"hash table full in kernel {k.name!r} "
                    f"(injected: {event.rule})")

    p = Precision.parse(precision)
    states = [_RegionState(i, k, chunk_durations(k, spec, p), spec)
              for i, k in enumerate(kernels)]

    # stream predecessor chains (all on one stream when streams disabled)
    prev_on_stream: dict[int, int] = {}
    predecessor: list[int | None] = [None] * len(states)
    for st in states:
        stream = st.kernel.stream if use_streams else 0
        if stream in prev_on_stream:
            predecessor[st.index] = prev_on_stream[stream]
        prev_on_stream[stream] = st.index

    free_slots = spec.total_threads
    issue_gap = spec.fork_join_us * 1e-6

    heap: list[tuple[float, int, int, int]] = []
    seq = 0
    # event tuples: (time, seq, kind, region_idx) where kind 0 = region
    # becomes ready, 1 = chunk completion
    for st in states:
        if predecessor[st.index] is None:
            heapq.heappush(heap,
                           (start_time + (st.index + 1) * issue_gap, seq, 0,
                            st.index))
            seq += 1

    ready: list[int] = []   # ready regions with chunks left, FIFO by index

    def try_dispatch(now: float) -> None:
        nonlocal seq, free_slots
        still_ready = []
        for idx in ready:
            st = states[idx]
            n_fit = min(free_slots, st.workers - st.running,
                        st.n_chunks - st.next_chunk)
            if n_fit > 0:
                if st.first_start is None:
                    st.first_start = now
                for c in range(st.next_chunk, st.next_chunk + n_fit):
                    heapq.heappush(
                        heap, (now + float(st.durations[c]), seq, 1, st.index))
                    seq += 1
                st.next_chunk += n_fit
                st.running += n_fit
                free_slots -= n_fit
            if not st.dispatch_complete:
                still_ready.append(idx)
        ready[:] = still_ready

    n_events = 0
    finished = 0
    changed = False
    while heap:
        n_events += 1
        if n_events > MAX_EVENTS:
            raise SchedulerError("event budget exceeded; runaway simulation")
        now, _, kind, r_idx = heapq.heappop(heap)
        st = states[r_idx]
        if kind == 0:
            insort(ready, st.index)
            changed = True
        else:
            free_slots += 1
            st.running -= 1
            st.done += 1
            changed = True
            if st.done == st.n_chunks:
                st.finish = now
                finished += 1
                for succ in states:
                    if predecessor[succ.index] == st.index:
                        issue_time = start_time + (succ.index + 1) * issue_gap
                        heapq.heappush(heap, (max(now, issue_time), seq, 0,
                                              succ.index))
                        seq += 1
        # coalesce simultaneous events before dispatching
        if heap and heap[0][0] == now:
            continue
        if ready and changed:
            try_dispatch(now)
        changed = False

    if finished != len(states):
        raise SchedulerError(
            f"{len(states) - finished} regions never completed "
            "(dispatch deadlock)")

    records = []
    for st in states:
        records.append(KernelRecord(
            name=st.kernel.name,
            phase=st.kernel.phase,
            stream=st.kernel.stream if use_streams else 0,
            start=float(st.first_start if st.first_start is not None
                        else start_time),
            end=float(st.finish),
            n_blocks=st.n_chunks,
            block_seconds=float(st.durations.sum()),
        ))
    end = max(r.end for r in records)
    return PhaseSchedule(start=start_time, end=end, records=records)
