"""End-to-end tests of the proposal algorithm (HashSpGEMM)."""

import numpy as np
import pytest

from repro.core.spgemm import HashSpGEMM
from repro.errors import DeviceMemoryError
from repro.gpu.device import P100
from repro.gpu.timeline import PHASES
from repro.sparse import generators, spgemm_reference

from tests.conftest import assert_matches_scipy, to_scipy


GENS = {
    "banded": lambda rng: generators.banded(300, 10, rng=rng),
    "stencil": lambda rng: generators.stencil_regular(400, 4, rng=rng),
    "power_law": lambda rng: generators.power_law(300, 3.0, 80, rng=rng),
    "block": lambda rng: generators.block_dense(64, 16, rng=rng),
}


class TestCorrectness:
    @pytest.mark.parametrize("gen", sorted(GENS))
    @pytest.mark.parametrize("precision", ["single", "double"])
    def test_matches_scipy(self, gen, precision, rng):
        A = GENS[gen](rng)
        result = HashSpGEMM().multiply(A, A, precision=precision)
        rtol = 1e-5 if precision == "single" else 1e-10
        assert_matches_scipy(result.matrix,
                             to_scipy(A) @ to_scipy(A), rtol=rtol)

    def test_rectangular(self, rng):
        A = generators.random_csr(40, 60, 5, rng=rng)
        B = generators.random_csr(60, 30, 4, rng=rng)
        result = HashSpGEMM().multiply(A, B)
        assert_matches_scipy(result.matrix, to_scipy(A) @ to_scipy(B))

    def test_empty_matrix(self):
        from repro.sparse.csr import CSRMatrix

        A = CSRMatrix.empty((10, 10))
        result = HashSpGEMM().multiply(A, A)
        assert result.matrix.nnz == 0

    def test_ablation_flags_do_not_change_result(self, rng):
        A = GENS["power_law"](rng)
        base = HashSpGEMM().multiply(A, A).matrix
        for options in ({"use_streams": False}, {"use_pwarp": False},
                        {"pwarp_width": 8}):
            other = HashSpGEMM(**options).multiply(A, A).matrix
            assert other.allclose(base, rtol=1e-12)


class TestReport:
    @pytest.fixture(scope="class")
    def result(self):
        A = generators.banded(400, 12, rng=np.random.default_rng(5))
        return HashSpGEMM().multiply(A, A, precision="single",
                                      matrix_name="banded")

    def test_metadata(self, result):
        r = result.report
        assert r.algorithm == "proposal"
        assert r.matrix == "banded"
        assert r.precision == "single"
        assert r.device == P100.name

    def test_flops_metric(self, result):
        r = result.report
        assert r.flops == 2 * r.n_products
        assert r.gflops == pytest.approx(r.flops / r.total_seconds / 1e9)

    def test_phase_decomposition_sums_to_total(self, result):
        r = result.report
        total = sum(r.phase_seconds.get(p, 0.0) for p in PHASES)
        assert total == pytest.approx(r.total_seconds, rel=1e-9)

    def test_all_paper_phases_present(self, result):
        r = result.report
        for phase in PHASES:
            assert r.phase_seconds.get(phase, 0.0) > 0.0

    def test_kernels_recorded(self, result):
        names = [k.name for k in result.report.kernels]
        assert "count_products" in names
        assert any(n.startswith("symbolic") for n in names)
        assert any(n.startswith("numeric") for n in names)

    def test_peak_includes_inputs_and_output(self, result):
        r = result.report
        assert r.peak_bytes > 0
        assert r.malloc_count >= 5

    def test_summary_renders(self, result):
        s = result.report.summary()
        assert "GFLOPS" in s and "proposal" in s


class TestAblations:
    def test_streams_help_multi_group_matrix(self, rng):
        """Section IV-C: streams give a measurable speedup when several
        groups have few rows (the Circuit experiment, x1.3)."""
        A = generators.power_law(4000, 5.0, 200, rng=rng)
        with_streams = HashSpGEMM().multiply(A, A).report.total_seconds
        without = HashSpGEMM(use_streams=False).multiply(A, A).report.total_seconds
        assert without > with_streams

    def test_pwarp_helps_tiny_row_matrix(self, rng):
        """Section IV-C: PWARP/ROW speeds up low-nnz/row matrices
        (the Epidemiology experiment, x3.1)."""
        A = generators.stencil_regular(40000, 4, rng=rng)
        with_pwarp = HashSpGEMM().multiply(A, A).report.total_seconds
        without = HashSpGEMM(use_pwarp=False).multiply(A, A).report.total_seconds
        assert without > 1.2 * with_pwarp

    def test_pwarp_width_4_beats_extremes(self, rng):
        """Section III-B: 4 threads per row is the stable sweet spot."""
        A = generators.stencil_regular(8000, 4, rng=rng)
        times = {w: HashSpGEMM(pwarp_width=w).multiply(A, A).report.total_seconds
                 for w in (1, 4, 16)}
        assert times[4] < times[1]
        assert times[4] <= times[16] * 1.05


class TestMemoryBehaviour:
    def test_oom_on_tiny_device(self, rng):
        A = generators.banded(500, 12, rng=rng)
        tiny_device = P100.with_memory(64 * 1024)
        with pytest.raises(DeviceMemoryError):
            HashSpGEMM().multiply(A, A, device=tiny_device)

    def test_working_memory_released(self, rng):
        """After the run only inputs + C remain live: peak accounting via
        the event trace must end at inputs + output."""
        from repro.base import RunContext  # noqa: F401  (doc reference)

        A = generators.banded(300, 8, rng=rng)
        result = HashSpGEMM().multiply(A, A, precision="double")
        r = result.report
        expected_resident = A.device_bytes("double") \
            + result.matrix.device_bytes("double")
        # peak must be at least resident, and resident accounts must match
        assert r.peak_bytes >= expected_resident

    def test_proposal_overhead_is_row_arrays(self, rng):
        """The paper: grouping arrays are the only standing overhead."""
        A = generators.stencil_regular(2000, 4, rng=rng)
        result = HashSpGEMM().multiply(A, A, precision="double")
        resident = A.device_bytes("double") \
            + result.matrix.device_bytes("double")
        overhead = result.report.peak_bytes - resident
        # row_products + 2 group arrays + row_nnz ~ 16 B/row (+rpt slack)
        assert overhead <= 20 * A.n_rows + 64
