"""Occupancy calculator tests, anchored to Table I's #TB column."""

import pytest

from repro.errors import DeviceConfigError
from repro.gpu.device import P100
from repro.gpu.occupancy import occupancy_for


class TestTableIConfigurations:
    """Each TB/ROW group's counting-phase config must reach its #TB."""

    @pytest.mark.parametrize("threads,table_entries,expected_tb", [
        (1024, 8192, 2),    # group 1 (and 0): 32 KB tables, 2 per SM
        (512, 4096, 4),     # group 2
        (256, 2048, 8),     # group 3
        (128, 1024, 16),    # group 4
        (64, 512, 32),      # group 5: hits the 32-block hardware cap
    ])
    def test_counting_phase_blocks_per_sm(self, threads, table_entries,
                                          expected_tb):
        occ = occupancy_for(P100, threads, table_entries * 4)
        assert occ.blocks_per_sm == expected_tb

    def test_pwarp_group(self):
        # 512-thread blocks, 128 rows x 32-entry tables
        occ = occupancy_for(P100, 512, 128 * 32 * 4)
        assert occ.blocks_per_sm == 4

    def test_numeric_double_group1_limited_by_shared(self):
        # 4096-entry tables at 12 B/entry = 48 KB: only one block fits
        occ = occupancy_for(P100, 1024, 4096 * 12)
        assert occ.blocks_per_sm == 1
        assert occ.limited_by == "shared"

    def test_numeric_single_group1_fits_two(self):
        occ = occupancy_for(P100, 1024, 4096 * 8)
        assert occ.blocks_per_sm == 2


class TestLimits:
    def test_thread_limited(self):
        occ = occupancy_for(P100, 1024, 0)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "threads"

    def test_block_cap(self):
        occ = occupancy_for(P100, 32, 0)
        assert occ.blocks_per_sm == 32
        assert occ.limited_by == "blocks"

    def test_warps_rounded_up(self):
        occ = occupancy_for(P100, 33, 0)
        assert occ.warps_per_block == 2

    def test_resident_warps(self):
        occ = occupancy_for(P100, 256, 0)
        assert occ.resident_warps == occ.blocks_per_sm * 8


class TestErrors:
    def test_zero_threads(self):
        with pytest.raises(DeviceConfigError):
            occupancy_for(P100, 0, 0)

    def test_too_many_threads(self):
        with pytest.raises(DeviceConfigError):
            occupancy_for(P100, 2048, 0)

    def test_too_much_shared(self):
        with pytest.raises(DeviceConfigError):
            occupancy_for(P100, 128, 49 * 1024)

    def test_negative_shared(self):
        with pytest.raises(DeviceConfigError):
            occupancy_for(P100, 128, -1)
