"""Occupancy: how many blocks of a kernel fit on one SM simultaneously.

This is the lever behind Table I of the paper: halving the hash-table size
halves the per-block shared memory and thread count, doubling resident
blocks per SM ("#TB" in Table I) until the hardware cap of 32 is reached.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceConfigError
from repro.gpu.device import DeviceSpec


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one kernel configuration."""

    blocks_per_sm: int       #: concurrently resident blocks per SM
    warps_per_block: int     #: warps in one block (threads rounded up)
    limited_by: str          #: 'threads' | 'shared' | 'blocks'

    @property
    def resident_warps(self) -> int:
        """Warps resident on an SM when fully occupied by this kernel."""
        return self.blocks_per_sm * self.warps_per_block


def occupancy_for(device: DeviceSpec, block_threads: int,
                  shared_bytes_per_block: int) -> Occupancy:
    """Compute resident blocks/SM for a launch configuration.

    Raises :class:`DeviceConfigError` when the configuration cannot launch
    at all (block too large, too much shared memory).
    """
    if block_threads <= 0:
        raise DeviceConfigError(f"block of {block_threads} threads")
    if block_threads > device.max_threads_per_block:
        raise DeviceConfigError(
            f"block of {block_threads} threads exceeds device limit "
            f"{device.max_threads_per_block}")
    if shared_bytes_per_block > device.max_shared_per_block:
        raise DeviceConfigError(
            f"{shared_bytes_per_block} B shared per block exceeds device limit "
            f"{device.max_shared_per_block} B")
    if shared_bytes_per_block < 0:
        raise DeviceConfigError("negative shared memory request")

    warps = -(-block_threads // device.warp_size)      # ceil division
    threads_rounded = warps * device.warp_size

    limits = {
        "threads": device.max_threads_per_sm // threads_rounded,
        "blocks": device.max_blocks_per_sm,
    }
    if shared_bytes_per_block > 0:
        limits["shared"] = device.shared_mem_per_sm // shared_bytes_per_block

    limit = min(limits, key=lambda k: (limits[k], k != "threads", k != "shared"))
    blocks = limits[limit]
    if blocks <= 0:
        raise DeviceConfigError(
            f"configuration (threads={block_threads}, "
            f"shared={shared_bytes_per_block}B) fits zero blocks per SM")
    return Occupancy(blocks_per_sm=int(blocks), warps_per_block=int(warps),
                     limited_by=limit)
