"""Legacy setup shim: this offline environment lacks the `wheel` package
PEP 660 editable installs need, so `pip install -e .` goes through the
classic `setup.py develop` path.  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
