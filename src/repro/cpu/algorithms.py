"""The CPU algorithm family: hash, heap and propagation blocking.

Three registry algorithms sharing one skeleton:

* ``hash-cpu`` -- the paper's hash accumulator as Nagasaka-Azad port it
  to KNL/multicore (arXiv 1804.01698): per-row thread-private hash
  tables, two passes (symbolic count, numeric fill), thread-parallel
  row blocking.
* ``heap-cpu`` -- their heap accumulator: a k-way merge over the row's
  A-entries; slower per product (``log nnz_a`` comparisons) but with a
  tiny, L1-resident workspace -- the lowest peak memory of the family.
* ``propblock`` -- Gu et al.'s propagation blocking (arXiv 2002.11302):
  phase 1 streams every (column, value) product into column-range bins
  (scatter becomes bandwidth), phase 2 merges each bin with a dense
  L2-resident accumulator.  Highest peak memory (it materializes all
  products), best behavior when rows are long and hash tables spill.

All three compute the functional result through the same cached
:func:`~repro.sparse.product.product_for` as every GPU algorithm -- so
they are bit-identical to the reference oracle by construction -- and
drive the shared :class:`~repro.base.RunContext`, so the conservation
laws hold and the typed event stream (grouping decisions, table stats,
charges) has the same schema the observability layer already consumes.
"""

from __future__ import annotations

import numpy as np

from repro.base import SpGEMMAlgorithm, SpGEMMResult
from repro.cpu import plan as cplan
from repro.cpu.device import KNL64, CPUSpec
from repro.cpu.params import CPUParams
from repro.gpu.faults import FaultPlan
from repro.obs import events as OBS
from repro.sparse.csr import CSRMatrix
from repro.sparse.product import product_for
from repro.types import Precision


class _CPUAlgorithm(SpGEMMAlgorithm):
    """Shared skeleton: params handling, prologue, reporting."""

    backend_name = "cpu"
    supports_plan_cache = False

    def __init__(self, *, use_streams: bool = True,
                 params: "CPUParams | dict | None" = None) -> None:
        self.use_streams = use_streams
        if isinstance(params, dict):
            params = CPUParams.from_dict(params)
        self.params = params or CPUParams()

    def apply_param_overrides(self, overrides) -> bool:
        """Adopt tuned :class:`CPUParams`; a foreign override type (the
        GPU's ``ParamOverrides``) is declined so a mixed-architecture
        tuning pass cannot misconfigure a CPU algorithm."""
        if overrides is None:
            self.params = CPUParams()
            return True
        if not isinstance(overrides, CPUParams):
            return False
        self.params = overrides
        return True

    def multiply(self, A: CSRMatrix, B: CSRMatrix, *,
                 precision: Precision | str = Precision.DOUBLE,
                 device=KNL64, matrix_name: str = "",
                 faults: FaultPlan | None = None) -> SpGEMMResult:
        A, B, p = self._prepare(A, B, precision)
        spec = self._native_spec(device)
        with self.context(matrix_name, spec, p, faults) as ctx:
            return self._multiply(ctx, A, B, p, spec)

    # -- shared pieces -------------------------------------------------------

    def _prologue(self, ctx, A: CSRMatrix, B: CSRMatrix, p: Precision,
                  spec: CPUSpec):
        """Resident inputs, functional result, chunking decisions, and
        the setup-phase product count shared by all three algorithms."""
        n_rows = A.n_rows
        ctx.alloc_resident("A", A.device_bytes(p))
        if B is not A:
            ctx.alloc_resident("B", B.device_bytes(p))

        row_products, C = product_for(A, B, p)
        row_nnz = C.row_nnz().astype(np.int64)
        n_products = int(row_products.sum())
        ctx.note_stats(n_products=n_products, nnz_out=C.nnz)

        threads = cplan.threads_for(spec, self.params)
        block_rows = cplan.block_rows_for(spec, self.params, n_rows)
        nnz_a = A.row_nnz().astype(np.float64)

        d_products = ctx.alloc("row_products", 4 * n_rows, phase="setup")
        ctx.run("setup", [cplan.count_products_cpu_kernel(
            nnz_a, threads=threads, block_rows=block_rows)],
            use_streams=self.use_streams)
        return (n_rows, nnz_a, row_products, row_nnz, C, n_products,
                threads, block_rows, d_products)

    @staticmethod
    def _rowblock_stats(assign: str, n_rows: int, block_rows: int,
                        counts: np.ndarray) -> list[dict]:
        """One GROUPING record per run: the CPU family has one uniform
        row-block 'group' where the GPU has Table I's ladder."""
        counts = np.asarray(counts)
        return [{
            "group": 0,
            "assign": assign,
            "rows": int(n_rows),
            "block_rows": int(block_rows),
            "count_min": int(counts.min(initial=0)),
            "count_max": int(counts.max(initial=0)),
        }]

    @staticmethod
    def _table_stats(entries: np.ndarray, loads: np.ndarray) -> list[dict]:
        loads = np.asarray(loads, dtype=np.float64)
        return [{
            "group": 0,
            "tables": int(len(entries)),
            "table_entries": int(np.asarray(entries).sum()),
            "load_mean": float(loads.mean()) if loads.size else 0.0,
            "load_max": float(loads.max(initial=0.0)),
        }]


class HashCPUSpGEMM(_CPUAlgorithm):
    """Hash-accumulator SpGEMM on thread-private tables (Nagasaka-Azad)."""

    name = "hash-cpu"

    def _multiply(self, ctx, A, B, p: Precision, spec: CPUSpec) -> SpGEMMResult:
        (n_rows, nnz_a, row_products, row_nnz, C, n_products,
         threads, block_rows, d_products) = self._prologue(ctx, A, B, p, spec)

        if ctx.observed:
            ctx.emit_each(OBS.GROUPING, "symbolic", self._rowblock_stats(
                "ROWBLOCK", n_rows, block_rows, row_products))

        # -- count: symbolic pass on thread-private key-only tables ----
        d_nnz = ctx.alloc("row_nnz", 4 * (n_rows + 1), phase="setup")
        entries = cplan.hash_table_entries(row_nnz)
        # each worker owns one table sized for the worst row it may meet
        max_entries = int(entries.max(initial=2))
        sym_tables = ctx.alloc("thread_tables_symbolic",
                               threads * max_entries * 4, phase="count")
        if ctx.observed:
            loads = row_nnz / np.maximum(entries, 1)
            ctx.emit_each(OBS.HASH_STATS, "symbolic",
                          self._table_stats(entries, loads))
        ctx.run("count", [cplan.hash_symbolic_cpu_kernel(
            nnz_a, row_products, row_nnz, spec,
            threads=threads, block_rows=block_rows)],
            use_streams=self.use_streams)
        ctx.free(sym_tables)
        ctx.run("count", [cplan.pass_over_rows_cpu_kernel(
            "scan_rpt_c", n_rows, 2.0, threads=threads,
            block_rows=block_rows, phase="count")],
            use_streams=self.use_streams)

        # -- allocate C after the host reads the total back ----
        ctx.host_sync("count")
        c_buf = ctx.alloc("C", C.device_bytes(p), phase="malloc")

        # -- calc: numeric pass on key+value tables ----
        if ctx.observed:
            ctx.emit_each(OBS.GROUPING, "numeric", self._rowblock_stats(
                "ROWBLOCK", n_rows, block_rows, row_nnz))
        num_tables = ctx.alloc(
            "thread_tables_numeric",
            threads * max_entries * (4 + p.value_dtype.itemsize),
            phase="calc")
        if ctx.observed:
            loads = row_nnz / np.maximum(entries, 1)
            ctx.emit_each(OBS.HASH_STATS, "numeric",
                          self._table_stats(entries, loads))
        ctx.run("calc", [cplan.hash_numeric_cpu_kernel(
            nnz_a, row_products, row_nnz, spec, p,
            threads=threads, block_rows=block_rows)],
            use_streams=self.use_streams)

        for buf in (num_tables, d_nnz, d_products):
            ctx.free(buf)
        _ = c_buf  # stays live: peak accounting

        report = ctx.report(n_products=n_products, nnz_out=C.nnz)
        return SpGEMMResult(matrix=C, report=report)


class HeapCPUSpGEMM(_CPUAlgorithm):
    """Heap-accumulator SpGEMM: k-way merge per row (Nagasaka-Azad)."""

    name = "heap-cpu"

    def _multiply(self, ctx, A, B, p: Precision, spec: CPUSpec) -> SpGEMMResult:
        (n_rows, nnz_a, row_products, row_nnz, C, n_products,
         threads, block_rows, d_products) = self._prologue(ctx, A, B, p, spec)

        if ctx.observed:
            ctx.emit_each(OBS.GROUPING, "symbolic", self._rowblock_stats(
                "ROWBLOCK", n_rows, block_rows, row_products))

        # -- count: symbolic merge (no tables -- a heap of A-cursors) ----
        d_nnz = ctx.alloc("row_nnz", 4 * (n_rows + 1), phase="setup")
        max_heap = int(np.max(nnz_a, initial=1))
        heaps = ctx.alloc("thread_heaps", threads * max(1, max_heap) * 16,
                          phase="count")
        ctx.run("count", [cplan.heap_cpu_kernel(
            "cpu_heap_symbolic", nnz_a, row_products, row_nnz, p,
            numeric=False, threads=threads, block_rows=block_rows)],
            use_streams=self.use_streams)
        ctx.run("count", [cplan.pass_over_rows_cpu_kernel(
            "scan_rpt_c", n_rows, 2.0, threads=threads,
            block_rows=block_rows, phase="count")],
            use_streams=self.use_streams)

        ctx.host_sync("count")
        c_buf = ctx.alloc("C", C.device_bytes(p), phase="malloc")

        # -- calc: numeric merge ----
        if ctx.observed:
            ctx.emit_each(OBS.GROUPING, "numeric", self._rowblock_stats(
                "ROWBLOCK", n_rows, block_rows, row_nnz))
        ctx.run("calc", [cplan.heap_cpu_kernel(
            "cpu_heap_numeric", nnz_a, row_products, row_nnz, p,
            numeric=True, threads=threads, block_rows=block_rows,
            phase="calc")],
            use_streams=self.use_streams)

        for buf in (heaps, d_nnz, d_products):
            ctx.free(buf)
        _ = c_buf  # stays live: peak accounting

        report = ctx.report(n_products=n_products, nnz_out=C.nnz)
        return SpGEMMResult(matrix=C, report=report)


class PropBlockSpGEMM(_CPUAlgorithm):
    """Two-phase propagation-blocking SpGEMM (Gu et al.)."""

    name = "propblock"

    def _multiply(self, ctx, A, B, p: Precision, spec: CPUSpec) -> SpGEMMResult:
        (n_rows, nnz_a, row_products, row_nnz, C, n_products,
         threads, block_rows, d_products) = self._prologue(ctx, A, B, p, spec)

        vb = p.value_dtype.itemsize
        bins = cplan.bins_for(spec, self.params, n_products, vb)
        bin_width = max(1, -(-B.n_cols // bins))

        if ctx.observed:
            ctx.emit_each(OBS.GROUPING, "symbolic", self._rowblock_stats(
                "BIN", n_rows, block_rows, row_products))

        # -- count (phase 1): propagate all products into column bins ----
        # the whole intermediate product set is materialized: the
        # bandwidth-for-memory trade at the heart of the technique
        bin_bufs = ctx.alloc("bin_buffers",
                             max(1, n_products) * (4 + vb) + bins * 8,
                             phase="count")
        d_nnz = ctx.alloc("row_nnz", 4 * (n_rows + 1), phase="setup")
        ctx.run("count", [cplan.propagate_cpu_kernel(
            nnz_a, row_products, p, threads=threads, block_rows=block_rows,
            bins=bins)],
            use_streams=self.use_streams)
        ctx.run("count", [cplan.pass_over_rows_cpu_kernel(
            "scan_rpt_c", n_rows, 2.0, threads=threads,
            block_rows=block_rows, phase="count")],
            use_streams=self.use_streams)

        ctx.host_sync("count")
        c_buf = ctx.alloc("C", C.device_bytes(p), phase="malloc")

        # -- calc (phase 2): merge each bin with a dense accumulator ----
        # per-bin load from the functional result's column distribution;
        # products are attributed proportionally (deterministic)
        bin_nnz = np.bincount(np.asarray(C.col) // bin_width,
                              minlength=bins).astype(np.float64)[:bins]
        scale = n_products / max(1, C.nnz)
        bin_products = bin_nnz * scale
        if ctx.observed:
            ctx.emit_each(OBS.GROUPING, "numeric", [{
                "group": 0, "assign": "BIN", "rows": int(bins),
                "block_rows": int(bin_width),
                "count_min": int(bin_nnz.min(initial=0)),
                "count_max": int(bin_nnz.max(initial=0)),
            }])
            loads = bin_nnz / float(bin_width)
            ctx.emit_each(OBS.HASH_STATS, "numeric", [{
                "group": 0, "tables": int(bins),
                "table_entries": int(bins * bin_width),
                "load_mean": float(loads.mean()) if loads.size else 0.0,
                "load_max": float(loads.max(initial=0.0)),
            }])
        accums = ctx.alloc("bin_accumulators",
                           threads * bin_width * (4 + vb), phase="calc")
        ctx.run("calc", [cplan.merge_cpu_kernel(
            bin_products, bin_nnz, bin_width, spec, p, threads=threads)],
            use_streams=self.use_streams)

        for buf in (accums, bin_bufs, d_nnz, d_products):
            ctx.free(buf)
        _ = c_buf  # stays live: peak accounting

        report = ctx.report(n_products=n_products, nnz_out=C.nnz)
        return SpGEMMResult(matrix=C, report=report)
