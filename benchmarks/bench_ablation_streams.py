"""E8 -- Section IV-C stream ablation: "our proposal with CUDA stream
achieves x1.3 speedups compared to the proposal without CUDA stream"
(measured on Circuit, whose groups contain as few as 8-9 rows).

Runs the proposal with and without concurrent streams on the Circuit
analogue and on the rest of the low-throughput suite.
"""

from repro.bench.datasets import LOW_THROUGHPUT, get_dataset
from repro.core.spgemm import hash_spgemm

from benchmarks.conftest import run_once


def _ratio(name: str) -> tuple[float, float, float]:
    A = get_dataset(name).matrix()
    with_streams = hash_spgemm(A, A, precision="single",
                               matrix_name=name).report.total_seconds
    without = hash_spgemm(A, A, precision="single", matrix_name=name,
                          use_streams=False).report.total_seconds
    return with_streams, without, without / with_streams


def test_ablation_cuda_streams(benchmark, show):
    results = run_once(benchmark,
                       lambda: {n: _ratio(n) for n in LOW_THROUGHPUT})
    lines = [f"{'Matrix':<16}{'streams [us]':>14}{'serial [us]':>14}"
             f"{'speedup':>9}"]
    for name, (w, wo, r) in results.items():
        lines.append(f"{name:<16}{w * 1e6:>14.1f}{wo * 1e6:>14.1f}"
                     f"{'x%.2f' % r:>9}")
    show("Stream ablation (paper: x1.3 on Circuit)", "\n".join(lines))

    # streams help on every multi-group matrix; Circuit lands near the
    # paper's x1.3 (band 1.1 - 1.8 at instance scale)
    _, _, circuit = results["Circuit"]
    assert 1.1 <= circuit <= 1.8
    assert all(r >= 1.0 for _, _, r in results.values())
