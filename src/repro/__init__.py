"""repro -- reproduction of Nagasaka, Nukada & Matsuoka (ICPP 2017):
"High-Performance and Memory-Saving Sparse General Matrix-Matrix
Multiplication for NVIDIA Pascal GPU".

The package implements the paper's hash-table SpGEMM (*nsparse*) and the
three baselines it compares against (CUSP's ESC, a cuSPARSE-style
two-phase hash, BHSPARSE's bin hybrid) on a simulated Pascal-class device
model -- functionally exact sparse results plus a documented performance
and memory model.  See DESIGN.md for the substitution rationale.

Quick start::

    import repro
    A = repro.generators.poisson2d(128)
    result = repro.multiply(A, A)                       # paper defaults
    result = repro.multiply(A, A, options=repro.SpGEMMOptions(
        algorithm="proposal", precision="single", tune=True))
    print(result.report.summary())

:func:`repro.multiply` with a :class:`repro.SpGEMMOptions` is the public
API; ``repro.spgemm`` and the per-algorithm wrappers remain as
deprecated shims with identical results.
"""

import warnings as _warnings

from repro import sparse
from repro.base import SpGEMMAlgorithm, SpGEMMResult
from repro.core.params import ParamOverrides, build_group_table
from repro.core.resilient import (
    ResilienceReport,
    ResilientSpGEMM,
    resilient_spgemm,
)
from repro.core.spgemm import HashSpGEMM, hash_spgemm
from repro.dist import DevicePool, DistSpGEMM, Interconnect
from repro.engine import BatchJob, SpGEMMEngine, SpGEMMPlan
from repro.errors import (
    AlgorithmError,
    CircuitOpenError,
    DeviceConfigError,
    DeviceFreeError,
    DeviceLostError,
    DeviceMemoryError,
    HashTableError,
    JobTimeoutError,
    PlanMismatchError,
    ReproError,
    SchedulerError,
    ServeError,
    ServerOverloadedError,
    ShapeMismatchError,
    SparseFormatError,
    UnknownAlgorithmError,
    UnknownDeviceError,
)
from repro.backend import (
    Backend,
    backend_for_spec,
    backends,
    device_presets,
    register_backend,
    resolve_device,
)
from repro.cpu import CPU_PRESETS, KNL64, XEON24, CPUParams, CPUSpec
from repro.options import SpGEMMOptions, multiply, runner_for
from repro.serve import ServedJob, ServePolicy, SpGEMMServer
from repro.tune import Autotuner, TunedSpGEMM, TuningStore
from repro.gpu.device import K40, P100, VEGA56, DeviceSpec
from repro.gpu.faults import FaultEvent, FaultPlan
from repro.gpu.timeline import SimReport
from repro.sparse import generators
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.reference import spgemm_reference
from repro.types import Precision

__version__ = "1.0.0"

__all__ = [
    "Autotuner",
    "Backend",
    "BatchJob",
    "COOMatrix",
    "CPUParams",
    "CPUSpec",
    "CPU_PRESETS",
    "CSRMatrix",
    "DevicePool",
    "DeviceSpec",
    "DistSpGEMM",
    "FaultEvent",
    "FaultPlan",
    "HashSpGEMM",
    "Interconnect",
    "K40",
    "KNL64",
    "P100",
    "ParamOverrides",
    "Precision",
    "ResilienceReport",
    "ResilientSpGEMM",
    "SimReport",
    "SpGEMMAlgorithm",
    "ServePolicy",
    "ServedJob",
    "SpGEMMEngine",
    "SpGEMMOptions",
    "SpGEMMPlan",
    "SpGEMMResult",
    "SpGEMMServer",
    "TunedSpGEMM",
    "TuningStore",
    "VEGA56",
    "XEON24",
    "algorithms",
    "backend_for_spec",
    "backends",
    "device_presets",
    "register_backend",
    "resolve_device",
    "build_group_table",
    "generators",
    "hash_spgemm",
    "multiply",
    "resilient_spgemm",
    "runner_for",
    "spgemm",
    "spgemm_reference",
    "sparse",
    # errors
    "AlgorithmError",
    "CircuitOpenError",
    "DeviceConfigError",
    "DeviceFreeError",
    "DeviceLostError",
    "DeviceMemoryError",
    "HashTableError",
    "JobTimeoutError",
    "PlanMismatchError",
    "ReproError",
    "SchedulerError",
    "ServeError",
    "ServerOverloadedError",
    "ShapeMismatchError",
    "SparseFormatError",
    "UnknownAlgorithmError",
    "UnknownDeviceError",
]


def algorithms() -> dict[str, type[SpGEMMAlgorithm]]:
    """Registry of available SpGEMM algorithms by name."""
    from repro.baselines.registry import ALGORITHMS

    return dict(ALGORITHMS)


def spgemm(A: CSRMatrix, B: CSRMatrix, *, algorithm: str = "proposal",
           precision: Precision | str = Precision.DOUBLE, device: DeviceSpec = P100,
           matrix_name: str = "", faults: FaultPlan | None = None,
           options: SpGEMMOptions | None = None, **algo_options) -> SpGEMMResult:
    """Multiply two CSR matrices with a named algorithm.

    .. deprecated:: 1.1
        The scattered-kwargs form is superseded by :func:`repro.multiply`
        with a :class:`SpGEMMOptions`; this shim maps onto it (identical
        results) and emits a :class:`DeprecationWarning`.  Passing
        ``options=`` directly is the migrated spelling and does not warn.
    """
    if options is None:
        _warnings.warn(
            "repro.spgemm(algorithm=..., **kwargs) is deprecated; use "
            "repro.multiply(A, B, options=SpGEMMOptions(...))",
            DeprecationWarning, stacklevel=2)
        options = SpGEMMOptions(algorithm=algorithm, precision=precision,
                                device=device, algo_options=algo_options)
    return multiply(A, B, options=options, matrix_name=matrix_name,
                    faults=faults)
