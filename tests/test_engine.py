"""The plan-cached engine: replay fidelity, eviction, batching, wiring.

The engine's contract is sharp enough to test exactly: a cache hit must
produce a *bit-identical* matrix to the cold run while launching zero
setup/count-phase kernels, and its modeled time must drop by at least
the cold run's full symbolic+setup component.  Everything else here
guards the plumbing: LRU eviction under a byte budget, the observability
events (hit/miss/evict satisfy the conservation laws), the batched
submission path, and the registry/CLI/apps integration.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.base import RunContext
from repro.engine import BatchJob, PlanCache, SpGEMMEngine, make_key
from repro.errors import AlgorithmError, PlanMismatchError
from repro.gpu.device import P100
from repro.obs import events as E
from repro.obs.metrics import check_conservation
from repro.sparse import generators
from repro.sparse.csr import CSRMatrix

from tests.test_differential import CORPUS


def _phase_kernels(report, *phases) -> int:
    return sum(1 for k in report.kernels if k.phase in phases)


def _kinds(report) -> set:
    return {e.kind for e in report.events}


@pytest.fixture
def A(rng) -> CSRMatrix:
    return generators.banded(300, 10, rng=rng)


class TestReplayFidelity:
    @pytest.mark.parametrize("gen", sorted(CORPUS))
    def test_hit_bit_identical_to_cold(self, gen, rng):
        A = CORPUS[gen](rng)
        cold = repro.multiply(A, A).matrix
        eng = SpGEMMEngine("proposal")
        first = eng.multiply(A, A)
        second = eng.multiply(A, A)
        assert eng.stats().hits == 1 and eng.stats().misses == 1
        for got in (first.matrix, second.matrix):
            assert np.array_equal(got.rpt, cold.rpt)
            assert np.array_equal(got.col, cold.col)
            assert np.array_equal(got.val, cold.val)

    def test_single_precision_replay(self, A):
        eng = SpGEMMEngine("proposal")
        cold = eng.multiply(A, A, precision="single")
        hit = eng.multiply(A, A, precision="single")
        assert hit.matrix.dtype == np.float32
        assert np.array_equal(hit.matrix.val, cold.matrix.val)

    def test_value_change_same_pattern_still_hits(self, A):
        """New values on the same structure must hit and stay correct --
        the iterative-solver shape the cache exists for."""
        eng = SpGEMMEngine("proposal")
        eng.multiply(A, A)
        A2 = CSRMatrix(A.rpt, A.col, A.val * 2.0, A.shape, check=False)
        hit = eng.multiply(A2, A2)
        assert eng.stats().hits == 1
        ref = repro.multiply(A2, A2).matrix
        assert np.array_equal(hit.matrix.val, ref.val)

    def test_precision_and_device_partition_the_key(self, A):
        eng = SpGEMMEngine("proposal")
        eng.multiply(A, A, precision="double")
        eng.multiply(A, A, precision="single")
        assert eng.stats().hits == 0 and eng.stats().misses == 2

    def test_switches_partition_the_key(self, A):
        fast = SpGEMMEngine("proposal")
        slow = SpGEMMEngine("proposal", use_streams=False)
        k1 = make_key(A, A, fast.inner, P100, repro.Precision.DOUBLE)
        k2 = make_key(A, A, slow.inner, P100, repro.Precision.DOUBLE)
        assert k1 != k2 and k1.digest == k2.digest


class TestAcceptance:
    def test_hit_skips_symbolic_phase_entirely(self, A):
        """The PR's acceptance bar: cache_hit event, zero count-phase
        kernels, and the modeled time down by the full symbolic+setup
        component of the cold run."""
        eng = SpGEMMEngine("proposal")
        cold = eng.multiply(A, A).report
        hit = eng.multiply(A, A).report

        assert E.CACHE_MISS in _kinds(cold)
        assert E.CACHE_HIT in _kinds(hit)
        assert hit.numeric_only

        assert _phase_kernels(cold, "setup", "count") > 0
        assert _phase_kernels(hit, "setup", "count") == 0
        assert hit.phase_seconds.get("setup", 0.0) == 0.0
        assert hit.phase_seconds.get("count", 0.0) == 0.0

        symbolic = (cold.phase_seconds.get("setup", 0.0)
                    + cold.phase_seconds.get("count", 0.0))
        assert symbolic > 0.0
        assert hit.total_seconds <= cold.total_seconds - symbolic + 1e-12

        saved = next(e for e in hit.events if e.kind == E.CACHE_HIT)
        assert saved.attrs["saved_seconds"] == pytest.approx(symbolic)

    def test_numeric_only_context_rejects_symbolic_kernels(self, device):
        from repro.core.count_products import pass_over_rows_kernel

        ctx = RunContext("proposal", "x", device, repro.Precision.DOUBLE,
                         numeric_only=True)
        with pytest.raises(AlgorithmError, match="numeric-only"):
            ctx.run("count", [pass_over_rows_kernel("scan", 10, 2.0,
                                                    phase="count")])

    def test_stale_plan_falls_back_to_cold(self, A):
        """A plan failing validation mid-hit is retracted and the multiply
        recovers with a cold run (counted as a miss, not a hit)."""
        eng = SpGEMMEngine("proposal")
        eng.multiply(A, A)
        key = make_key(A, A, eng.inner, P100, repro.Precision.DOUBLE)
        plan = eng.cache.lookup(key)
        assert plan is not None
        eng.cache.stats.hits -= 1          # undo the probe above
        plan.shape = (1, 1)                # corrupt: validation must fail
        result = eng.multiply(A, A)
        assert result.matrix.nnz > 0
        assert eng.stats().hits == 0 and eng.stats().misses == 2
        with pytest.raises(PlanMismatchError):
            plan.validate(A, A)


class TestEviction:
    def _plan_bytes(self, A) -> int:
        probe = SpGEMMEngine("proposal")
        probe.multiply(A, A)
        return probe.cache.bytes_in_use

    def test_lru_eviction_under_tight_budget(self, rng):
        A = generators.banded(300, 10, rng=rng)
        B = generators.random_csr(300, 300, 8, rng=rng)
        budget = self._plan_bytes(A) + self._plan_bytes(B) // 2
        eng = SpGEMMEngine("proposal", cache_budget_bytes=budget)
        eng.multiply(A, A)                       # miss, cached
        rep = eng.multiply(B, B).report          # miss, evicts A's plan
        assert eng.stats().evictions == 1
        assert E.CACHE_EVICT in _kinds(rep)
        assert len(eng.cache) == 1
        eng.multiply(A, A)                       # A was evicted: miss again
        assert eng.stats().hits == 0 and eng.stats().misses == 3

    def test_lru_order_respects_recency(self, rng):
        A = generators.banded(200, 8, rng=rng)
        B = generators.banded(260, 8, rng=rng)
        C = generators.banded(320, 8, rng=rng)
        # holds A+B and (after evicting B) A+C, but not all three
        budget = (self._plan_bytes(A) + self._plan_bytes(C)
                  + self._plan_bytes(B) // 2)
        eng = SpGEMMEngine("proposal", cache_budget_bytes=budget)
        eng.multiply(A, A)
        eng.multiply(B, B)
        eng.multiply(A, A)                       # hit: A becomes most recent
        eng.multiply(C, C)                       # evicts B (least recent)
        kA = make_key(A, A, eng.inner, P100, repro.Precision.DOUBLE)
        kB = make_key(B, B, eng.inner, P100, repro.Precision.DOUBLE)
        assert kA in eng.cache and kB not in eng.cache

    def test_oversized_plan_is_uncacheable_not_stored(self, A):
        eng = SpGEMMEngine("proposal", cache_budget_bytes=16)
        eng.multiply(A, A)
        assert len(eng.cache) == 0
        assert eng.stats().uncacheable == 1
        assert eng.cache.bytes_in_use == 0

    def test_clear_resets_footprint(self, A):
        eng = SpGEMMEngine("proposal")
        eng.multiply(A, A)
        assert eng.cache.bytes_in_use > 0
        eng.cache.clear()
        assert len(eng.cache) == 0 and eng.cache.bytes_in_use == 0


class TestObservability:
    def test_hit_miss_evict_reports_conserve(self, rng):
        A = generators.banded(300, 10, rng=rng)
        B = generators.random_csr(300, 300, 8, rng=rng)
        probe = SpGEMMEngine("proposal")
        probe.multiply(A, A)
        probe.multiply(B, B)
        # fits either plan alone but not both: B's store evicts A's plan
        eng = SpGEMMEngine("proposal",
                           cache_budget_bytes=probe.cache.bytes_in_use - 1)
        reports = [eng.multiply(A, A).report,     # miss
                   eng.multiply(A, A).report,     # hit
                   eng.multiply(B, B).report,     # miss + evict
                   eng.multiply(B, B).report]     # hit
        seen = set()
        for r in reports:
            check_conservation(r)
            seen |= _kinds(r)
        assert {E.CACHE_HIT, E.CACHE_MISS, E.CACHE_EVICT} <= seen

    def test_report_metrics_count_cache_events(self, A):
        eng = SpGEMMEngine("proposal")
        miss = eng.multiply(A, A).report.metrics()
        hit = eng.multiply(A, A).report.metrics()
        assert miss.value("plan_cache_events_total", event="miss") == 1
        assert hit.value("plan_cache_events_total", event="hit") == 1
        assert hit.value("plan_cache_saved_seconds_total") > 0
        assert hit.value("run_info", stat="numeric_only") == 1.0
        # cold reports carry no cache metric families at all (goldens)
        assert "plan_cache_events_total" not in repro.multiply(
            A, A).report.metrics()

    def test_engine_metrics_registry(self, A):
        eng = SpGEMMEngine("proposal")
        eng.multiply(A, A)
        eng.multiply(A, A)
        m = eng.metrics()
        assert m.value("plan_cache_events_total", event="hit") == 1
        assert m.value("plan_cache_events_total", event="miss") == 1
        assert m.value("plan_cache_hit_ratio") == pytest.approx(0.5)
        assert m.value("plan_cache_plans") == 1
        assert m.value("plan_cache_bytes") > 0
        assert "hit-rate 50.0%" in eng.stats_summary()

    def test_trace_exports_carry_cache_events(self, A):
        from repro.obs.export import chrome_trace, trace_summary

        eng = SpGEMMEngine("proposal")
        eng.multiply(A, A)
        report = eng.multiply(A, A).report
        doc = chrome_trace(report)
        instants = [e for e in doc["traceEvents"]
                    if e.get("cat") == E.CACHE_HIT]
        assert instants and all(e["tid"] == 1000 for e in instants)
        text = trace_summary(report)
        assert "[plan_cache]" in text and "cache_hit" in text
        # cold runs keep the pre-engine summary layout byte-compatible
        assert "[plan_cache]" not in trace_summary(
            repro.multiply(A, A).report)


class TestBatch:
    def test_batch_results_in_submission_order(self, rng):
        mats = [generators.banded(150 + 30 * i, 8, rng=rng) for i in range(4)]
        eng = SpGEMMEngine("proposal")
        jobs = [BatchJob(m, m, matrix_name=f"m{i}")
                for i, m in enumerate(mats)] * 2
        results = eng.batch(jobs)
        assert len(results) == 8
        assert [r.report.matrix for r in results] \
            == [f"m{i}" for i in range(4)] * 2
        for i, m in enumerate(mats):
            ref = repro.multiply(m, m).matrix
            for r in (results[i], results[i + 4]):
                assert np.array_equal(r.matrix.val, ref.val)
        assert eng.batch_jobs == 8
        # 4 patterns x 2 submissions: the second wave can only hit/miss
        s = eng.stats()
        assert s.lookups == 8 and s.hits + s.misses == 8 and s.misses >= 4

    def test_batch_single_worker_and_tuples(self, A):
        eng = SpGEMMEngine("proposal")
        results = eng.batch([(A, A), (A, A)], max_workers=1)
        assert len(results) == 2
        assert np.array_equal(results[0].matrix.val, results[1].matrix.val)

    def test_batch_return_errors_in_place(self, A):
        bad = CSRMatrix.identity(7)      # shape mismatch vs A
        eng = SpGEMMEngine("proposal")
        out = eng.batch([(A, A), (A, bad)], return_errors=True)
        assert isinstance(out[0].matrix, CSRMatrix)
        assert isinstance(out[1], repro.ReproError)


class TestIntegration:
    def test_registry_and_top_level_dispatch(self, A):
        eng = repro.algorithms()["engine"]
        assert eng is SpGEMMEngine
        result = repro.multiply(A, A, algorithm="engine")
        assert result.matrix.canonicalize().allclose(
            repro.multiply(A, A).matrix)

    def test_disabled_engine_passes_through(self, A):
        eng = SpGEMMEngine("proposal", enabled=False)
        eng.multiply(A, A)
        eng.multiply(A, A)
        assert eng.stats().lookups == 0 and eng.passthrough_runs == 2

    def test_faulted_runs_bypass_the_cache(self, A):
        from repro.gpu.faults import FaultPlan

        eng = SpGEMMEngine("proposal")
        plan = FaultPlan()
        plan.limit_capacity(factor=1.0)
        eng.multiply(A, A, faults=plan)
        assert eng.stats().lookups == 0 and eng.passthrough_runs == 1

    def test_non_cacheable_inner_passes_through(self, A):
        eng = SpGEMMEngine("cusparse")
        eng.multiply(A, A)
        assert eng.stats().lookups == 0 and eng.passthrough_runs == 1

    def test_apps_share_an_engine(self, rng):
        from repro.apps import galerkin_product
        from repro.apps.amg import aggregate_poisson

        Af = generators.poisson2d(8)
        P = aggregate_poisson(8)
        eng = SpGEMMEngine("proposal")
        Ac1, _ = galerkin_product(Af, P, engine=eng)
        Ac2, _ = galerkin_product(Af, P, engine=eng)
        assert eng.stats().hits == 2 and eng.stats().misses == 2
        assert np.array_equal(Ac1.val, Ac2.val)
        cold, _ = galerkin_product(Af, P)
        assert np.array_equal(Ac1.val, cold.val)

    def test_markov_cluster_defaults_to_engine(self, rng):
        from repro.apps import markov_cluster

        A = generators.random_csr(80, 80, 5, rng=rng)
        res = markov_cluster(A, max_iters=8)
        assert res.engine is not None
        assert res.engine.stats().lookups == res.iterations
        off = markov_cluster(A, max_iters=8, engine=False)
        assert off.engine is None
        assert np.array_equal(res.matrix.val, off.matrix.val)

    def test_cli_repeat_engages_engine(self, capsys):
        from repro.cli import main

        assert main(["multiply", "--generate", "banded:200:8",
                     "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "(cold)" in out and "(replay)" in out
        assert "engine: proposal (plan cache on)" in out
        assert "hit-rate 50.0%" in out

    def test_cli_no_engine_stays_cold(self, capsys):
        from repro.cli import main

        assert main(["multiply", "--generate", "banded:200:8",
                     "--repeat", "2", "--no-engine"]) == 0
        out = capsys.readouterr().out
        assert "(replay)" not in out and "engine:" not in out


class TestPlanCacheUnit:
    def test_lookup_store_counts(self):
        cache = PlanCache(budget_bytes=1000)

        class FakePlan:
            symbolic_seconds = 0.0

            def __init__(self, n):
                self.n = n

            def device_bytes(self):
                return self.n

        assert cache.lookup("k1") is None
        evs = cache.store("k1", FakePlan(400))
        assert not evs and cache.lookup("k1") is not None
        cache.store("k2", FakePlan(500))
        evs = cache.store("k3", FakePlan(400))   # 1300 > 1000: evict k1
        assert [e.key for e in evs] == ["k1"]
        assert cache.stats.evictions == 1
        assert cache.bytes_in_use == 900
        assert list(cache.keys()) == ["k2", "k3"]
