"""E15 -- Figure 5 rebuilt purely from the exported observability metrics.

Where E6 (``bench_fig5_breakdown_single.py``) reads ``phase_seconds``
straight off the reports, this experiment reconstructs the same stacked
bars from the *exported* signal path: every run's event stream is
aggregated into its :class:`~repro.obs.metrics.MetricsRegistry`, and all
numbers below come from ``phase_seconds{phase=...}`` samples plus the
Chrome-trace slice totals.  The acceptance bound of the observability
layer is that both reconstructions agree with the report to 1e-9, so the
breakdown's conclusions survive being read from the telemetry alone.
"""

from repro.bench.datasets import DATASETS
from repro.bench.runner import metrics_phase_table, run_suite
from repro.gpu.timeline import PHASES
from repro.obs.export import chrome_phase_totals, chrome_trace

from benchmarks.conftest import run_once


def test_e15_metrics_breakdown(benchmark, show):
    runs = run_once(benchmark, lambda: run_suite(
        list(DATASETS), algorithms=("cusparse", "proposal"),
        precisions=("single",)))
    show("E15: Figure 5 phase breakdown from the metrics registry",
         metrics_phase_table(runs, algorithms=("cusparse", "proposal")))

    for r in runs:
        m = r.report.metrics()
        trace_totals = chrome_phase_totals(chrome_trace(r.report))
        for p in PHASES:
            want = r.report.phase_seconds.get(p, 0.0)
            # metric samples and trace slices carry the full signal
            assert abs(m.value("phase_seconds", phase=p) - want) < 1e-9
            assert abs(trace_totals.get(p, 0.0) - want) < 1e-9

    # the paper's headline, read from metrics only: the proposal's calc
    # phase shrinks vs cuSPARSE on the high-throughput matrices
    by_key = {(r.dataset, r.algorithm): r.report.metrics() for r in runs}
    for name in DATASETS:
        if DATASETS[name].category != "high":
            continue
        ours = by_key[(name, "proposal")]
        base = by_key[(name, "cusparse")]
        assert ours.value("phase_seconds", phase="calc") \
            < base.value("phase_seconds", phase="calc"), name
        assert ours.value("total_seconds") < base.value("total_seconds"), name
