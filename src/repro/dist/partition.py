"""Work-balanced 1-D row partitioning for the distributed driver.

Splitting A by *row count* balances nothing on power-law matrices -- one
dense row can carry more intermediate products than a thousand sparse
ones.  The partitioner instead weighs every row by a modeled byte cost
assembled from the same :mod:`repro.core.work` terms the kernel cost
model uses (streamed bytes of both phases, a byte equivalent for the
latency-bearing scattered loads, and one for the hash arithmetic), then
cuts contiguous prefixes at the devices' weighted shares.

Devices may be heterogeneous: each gets a share of the total work
proportional to its weight (the pool uses memory bandwidth, the
first-order throughput driver of these bandwidth-bound kernels).  The
split is the classic cumulative-sum / ``searchsorted`` prefix cut, so
the per-panel guarantee is

    ``panel_work[i] <= total * w[i] / sum(w) + max_row_work``

-- perfect balance up to the granularity of a single row, which the
property tests pin down.  Panels are half-open row ranges tiling
``[0, n_rows)`` in order; a panel may be empty when a device's share is
smaller than the next row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.count_products import count_products
from repro.core.work import (hash_flops, scattered_transactions,
                             stream_bytes_numeric, stream_bytes_symbolic)
from repro.sparse.csr import CSRMatrix
from repro.types import Precision

#: Byte equivalent of one latency-bearing scattered transaction: the
#: bytes the link could have streamed while the round-trip is in flight
#: (P100-scale: ~300 cycles at ~0.5 kB/us of fair-share bandwidth).
LATENCY_EQUIV_BYTES = 64.0

#: Byte equivalent of one hash/index operation (compute is cheap next to
#: memory on these kernels, but dense rows still pay for their probes).
FLOP_EQUIV_BYTES = 0.5


def estimate_row_work(A: CSRMatrix, B: CSRMatrix,
                      precision: Precision | str = Precision.DOUBLE
                      ) -> np.ndarray:
    """Modeled per-row cost of ``A @ B`` in byte equivalents.

    Covers both phases (each row is counted and then calculated), the
    scattered ``rpt_B`` lookups of each, and the hash arithmetic.  The
    output-row size is not known before the symbolic phase, so the
    estimate uses the ``min(products, n_cols)`` upper bound -- exact for
    rows without column collisions, pessimistic (never optimistic) for
    the rest.
    """
    p = Precision.parse(precision)
    nnz_a = A.row_nnz().astype(np.float64)
    nprod = count_products(A, B).astype(np.float64)
    nnz_out = np.minimum(nprod, float(B.n_cols))
    scattered = scattered_transactions(nnz_a)
    flops = hash_flops(nprod)
    return (stream_bytes_symbolic(nnz_a, nprod)
            + stream_bytes_numeric(nnz_a, nprod, nnz_out, p)
            + LATENCY_EQUIV_BYTES * 2.0 * scattered
            + FLOP_EQUIV_BYTES * 2.0 * flops)


@dataclass(frozen=True)
class Partition:
    """A 1-D row split of A across the pool's active devices.

    ``panels[i]`` is the half-open row range assigned to device ``i`` of
    the weight vector; ranges are contiguous, in order, and tile
    ``[0, n_rows)`` exactly (empty panels allowed).
    """

    panels: tuple[tuple[int, int], ...]
    panel_work: tuple[float, ...]    #: modeled byte cost per panel
    weights: tuple[float, ...]       #: device weights the cut used
    total_work: float
    max_row_work: float

    @property
    def n_rows(self) -> int:
        """Rows covered by the partition."""
        return self.panels[-1][1] if self.panels else 0

    def balance_bound(self, i: int) -> float:
        """The guaranteed ceiling of ``panel_work[i]`` (see module doc)."""
        share = self.weights[i] / sum(self.weights)
        return self.total_work * share + self.max_row_work

    def imbalance(self) -> float:
        """max/mean panel work over non-empty panels (1.0 = perfect)."""
        busy = [w for w, (lo, hi) in zip(self.panel_work, self.panels)
                if hi > lo]
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean > 0 else 1.0

    def summary(self) -> str:
        """One line per panel, for ``dist-stats`` and debugging."""
        lines = []
        for i, ((lo, hi), w) in enumerate(zip(self.panels, self.panel_work)):
            share = 100.0 * w / self.total_work if self.total_work else 0.0
            lines.append(f"  panel {i}: rows [{lo}, {hi}) "
                         f"({hi - lo} rows, {share:.1f}% of modeled work)")
        lines.append(f"  imbalance (max/mean): {self.imbalance():.3f}")
        return "\n".join(lines)


def partition_rows(A: CSRMatrix, B: CSRMatrix, weights,
                   precision: Precision | str = Precision.DOUBLE
                   ) -> Partition:
    """Cut A's rows into one contiguous panel per device weight.

    The cut points are the weighted prefix targets of the cumulative
    row-work sum; ``searchsorted`` lands each boundary on the first row
    whose prefix reaches the target, so every panel's work stays within
    one row of its proportional share.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0 or np.any(weights <= 0):
        raise ValueError("partition_rows needs a non-empty vector of "
                         "positive device weights")
    n = A.n_rows
    if n == 0:
        zero = (0, 0)
        return Partition(panels=(zero,) * weights.size,
                         panel_work=(0.0,) * weights.size,
                         weights=tuple(weights.tolist()),
                         total_work=0.0, max_row_work=0.0)
    row_work = np.maximum(estimate_row_work(A, B, precision), 1.0)
    cum = np.cumsum(row_work)
    targets = cum[-1] * np.cumsum(weights[:-1]) / weights.sum()
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.concatenate(([0], np.minimum(cuts, n), [n]))
    bounds = np.maximum.accumulate(bounds)
    panels = list(zip(bounds[:-1].tolist(), bounds[1:].tolist()))
    prefix = np.concatenate(([0.0], cum))
    work = [float(prefix[hi] - prefix[lo]) for lo, hi in panels]
    return Partition(panels=tuple(panels), panel_work=tuple(work),
                     weights=tuple(weights.tolist()),
                     total_work=float(cum[-1]),
                     max_row_work=float(row_work.max()))
