"""ResilientSpGEMM: row-panel splitting, the degradation ladder, and
recovery of a Table III analogue under a budget where the plain run OOMs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.count_products import count_products
from repro.core.resilient import (
    ResilientSpGEMM,
    merge_panel_reports,
    split_row_panels,
)
from repro.errors import (
    DeviceMemoryError,
    HashTableError,
    SparseFormatError,
)
from repro.gpu.device import P100
from repro.gpu.faults import FaultPlan
from repro.sparse import generators
from repro.sparse.csr import CSRMatrix
from repro.sparse.reference import spgemm_reference


class TestSplitRowPanels:
    def test_covers_all_rows_contiguously(self):
        panels = split_row_panels(np.ones(100), 4)
        assert panels[0][0] == 0 and panels[-1][1] == 100
        assert all(a[1] == b[0] for a, b in zip(panels, panels[1:]))
        assert len(panels) == 4

    def test_balances_by_weight(self):
        # one very heavy row: it must sit alone-ish, light rows grouped
        w = np.ones(100)
        w[10] = 1000.0
        panels = split_row_panels(w, 4)
        sums = [w[lo:hi].sum() for lo, hi in panels]
        heavy = [s for s in sums if s >= 1000]
        assert len(heavy) == 1

    def test_caps_at_row_count(self):
        panels = split_row_panels(np.ones(3), 10)
        assert panels == [(0, 1), (1, 2), (2, 3)]

    def test_empty(self):
        assert split_row_panels(np.empty(0), 4) == []


class TestRowPanelVstack:
    def test_roundtrip(self, small_random):
        A = small_random
        parts = [A.row_panel(lo, hi)
                 for lo, hi in split_row_panels(A.row_nnz(), 5)]
        assert CSRMatrix.vstack(parts).allclose(A)

    def test_out_of_range_raises(self, small_random):
        with pytest.raises(SparseFormatError, match="out of range"):
            small_random.row_panel(0, small_random.n_rows + 1)

    def test_vstack_empty_raises(self):
        with pytest.raises(SparseFormatError, match="zero panels"):
            CSRMatrix.vstack([])


@pytest.mark.faults
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n_panels=st.integers(1, 16))
def test_chunked_product_equals_reference(seed, n_panels):
    """Panel-by-panel multiply concatenates to exactly the full product."""
    A = generators.random_csr(50, 50, 5, rng=seed)
    B = generators.random_csr(50, 40, 4, rng=seed + 1)
    panels = split_row_panels(count_products(A, B), n_panels)
    C = CSRMatrix.vstack(
        [spgemm_reference(A.row_panel(lo, hi), B) for lo, hi in panels])
    assert C.allclose(spgemm_reference(A, B))


@pytest.fixture
def square():
    """A 256-row RMAT square: skewed enough to exercise panel balancing."""
    return generators.rmat(8, 4, rng=3)


@pytest.mark.faults
class TestLadder:
    def test_clean_run_has_no_degradation(self, square):
        r = repro.multiply(square, square, algorithm="resilient")
        rep = r.resilience
        assert rep is not None and not rep.recovered
        assert rep.final_strategy == "plain" and rep.faults_seen == 0
        assert "no degradation needed" in rep.summary()
        plain = repro.multiply(square, square, algorithm="proposal")
        assert r.matrix.allclose(plain.matrix)
        assert r.resilience and plain.resilience is None

    def test_transient_fault_recovers_by_retry(self, square):
        r = repro.multiply(square, square, algorithm="resilient",
                         faults=FaultPlan().fail_alloc(index=3))
        rep = r.resilience
        assert rep.recovered and rep.final_strategy == "retry"
        assert rep.injected_faults == 1
        assert [a.ok for a in rep.attempts] == [False, True]

    def test_budget_squeeze_recovers_by_panels(self, square):
        ref = spgemm_reference(square, square)
        plain = repro.multiply(square, square, algorithm="proposal")
        budget = int(0.7 * plain.report.peak_bytes)

        with pytest.raises(DeviceMemoryError):
            repro.multiply(square, square, algorithm="proposal",
                         device=P100.with_memory(budget))

        r = repro.multiply(square, square, algorithm="resilient",
                         memory_budget=budget)
        rep = r.resilience
        assert rep.recovered and rep.final_strategy == "panels"
        assert rep.panels_used >= 2
        assert max(rep.panel_peaks) <= budget
        assert r.matrix.allclose(ref)
        assert r.report.peak_bytes <= budget
        assert r.report.n_products == plain.report.n_products

    def test_persistent_kernel_fault_falls_back_to_cusparse(self, square):
        r = repro.multiply(square, square, algorithm="resilient",
                         faults=FaultPlan().fail_hash_table("symbolic",
                                                            times=None))
        rep = r.resilience
        assert rep.recovered and rep.final_algorithm == "cusparse"
        assert r.matrix.allclose(spgemm_reference(square, square))

    def test_total_failure_reraises_with_report(self, square):
        with pytest.raises(HashTableError) as exc:
            repro.multiply(square, square, algorithm="resilient",
                         faults=FaultPlan().fail_hash_table(".*", times=None))
        rep = exc.value.resilience
        assert rep is not None and not rep.recovered
        assert all(not a.ok for a in rep.attempts)
        assert len(rep.attempts) == rep.faults_seen


@pytest.mark.faults
def test_table3_analogue_recovery_under_pressure():
    """Acceptance: finish the cit-Patents analogue at 0.7x the proposal's
    own peak -- where the plain run is an OOM "-" entry -- via row-panel
    chunking, with output equal to the unconstrained run."""
    from repro.bench.datasets import get_dataset
    from repro.bench.runner import run_one

    ds = get_dataset("cit-Patents")
    A = ds.matrix()
    plain = repro.multiply(A, A, algorithm="proposal", precision="single")
    budget = int(0.7 * plain.report.peak_bytes)
    squeezed = P100.with_memory(budget)

    assert run_one(ds, "proposal", "single", device=squeezed).oom

    r = run_one(ds, "resilient", "single", memory_budget=budget)
    assert not r.oom and r.recovered
    assert r.resilience.final_strategy == "panels"
    assert max(r.resilience.panel_peaks) <= budget

    res = repro.multiply(A, A, algorithm="resilient", precision="single",
                       memory_budget=budget)
    assert res.matrix.allclose(plain.matrix)


class TestReportMerging:
    def test_merged_report_is_coherent(self, square):
        plain = repro.multiply(square, square, algorithm="proposal")
        r = repro.multiply(square, square, algorithm="resilient",
                           algo_options={"initial_panels": 4},
                           memory_budget=int(0.7 * plain.report.peak_bytes))
        rep = r.report
        assert rep.n_products == plain.report.n_products
        assert rep.nnz_out == plain.report.nnz_out
        assert rep.peak_bytes == max(r.resilience.panel_peaks)
        assert rep.total_seconds == pytest.approx(
            sum(rep.phase_seconds.values()), rel=1e-9)
        # kernel records lie on one non-overlapping global timeline
        assert all(k.end <= rep.total_seconds + 1e-12 for k in rep.kernels)
        assert "panels" in rep.algorithm

    def test_merge_requires_reports(self):
        with pytest.raises(IndexError):
            merge_panel_reports([], algorithm="x", matrix_name="y")


def test_resilient_is_registered():
    assert "resilient" in repro.algorithms()
    assert repro.algorithms()["resilient"] is ResilientSpGEMM
    # but it is not part of the paper's four-way benchmark ordering
    from repro.baselines.registry import DISPLAY_ORDER
    assert "resilient" not in DISPLAY_ORDER
