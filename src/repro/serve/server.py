"""The multi-tenant SpGEMM server: futures in, typed outcomes out.

:class:`SpGEMMServer` fronts the whole stack (``repro.multiply``'s
runner chain -- dist > tune > resilience > engine > algorithm) with a
thread pool and a robustness core:

* **admission control** -- each job's device working set is estimated
  from the Alg. 2 intermediate-product counts and the
  :mod:`repro.core.work` byte costs; jobs dispatch only while the
  in-flight estimates fit the :class:`~repro.dist.DevicePool`-derived
  memory budget, and the bounded weighted-fair queue sheds excess load
  with :class:`~repro.errors.ServerOverloadedError`;
* **deadlines and retry** -- expired jobs fail fast with
  :class:`~repro.errors.JobTimeoutError`; ``RECOVERABLE`` failures are
  retried under capped exponential backoff with deterministic jitter,
  then handed to the :class:`~repro.core.resilient.ResilientSpGEMM`
  ladder as the last rung;
* **per-tenant isolation** -- a :class:`~repro.serve.breaker.
  CircuitBreaker` trips on consecutive failures
  (:class:`~repro.errors.CircuitOpenError`, half-open probes to
  recover) and the :class:`~repro.serve.queue.WeightedFairQueue` keeps
  one tenant from starving the rest;
* **graceful degradation** -- under sustained memory or queue pressure
  new admissions run chunked/fallback (the resilience ladder) instead
  of being rejected, and identical (operand digest, options token) jobs
  coalesce onto one plan-cached run.

Every transition lands as a typed ``serve_*`` event on the server's own
:class:`~repro.obs.events.EventBus` (host-clock timestamps); the
``serve_*`` metric families derive from it and satisfy the conservation
law ``submitted == completed + rejected + timed_out + failed``
(:func:`~repro.obs.metrics.check_serve_conservation`).  Results are
bit-identical to a direct ``repro.multiply`` of the same options -- the
server only decides *when* and *through which degradation rung* a job
runs, never *what* it computes.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.core.count_products import count_products
from repro.core.resilient import RECOVERABLE
from repro.core.work import stream_bytes_numeric
from repro.errors import (CircuitOpenError, JobTimeoutError, ReproError,
                          ServerOverloadedError)
from repro.gpu.faults import FaultPlan
from repro.obs import events as OBS
from repro.obs.events import EventBus, observe_runs
from repro.obs.metrics import MetricsRegistry, metrics_from_events
from repro.options import SpGEMMOptions, runner_for
from repro.serve.breaker import STATE_VALUES, CircuitBreaker
from repro.serve.policy import ServePolicy
from repro.serve.queue import WeightedFairQueue
from repro.sparse.csr import CSRMatrix
from repro.types import Precision

#: How often a blocked worker re-checks deadlines with no queue activity.
_WAIT_POLL_S = 0.02

# job lifecycle states (``ServedJob.status``)
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
TIMED_OUT = "timed_out"


def estimate_job_bytes(A: CSRMatrix, B: CSRMatrix,
                       precision: "Precision | str") -> int:
    """Estimated device working set of ``A @ B`` (admission currency).

    Operand residency plus the intermediate-product upper bound on the
    output (``nnz(C) <= products`` per row) and the per-row streaming
    byte costs of :func:`repro.core.work.stream_bytes_numeric` as a
    conservative proxy for the numeric phase's working arrays.  An
    *estimate* by design: admission plans optimistically and the
    resilience ladder recovers the overflows (the OCEAN stance), so a
    cheap monotone upper-ish bound beats an exact symbolic pass.
    """
    p = Precision.parse(precision)
    nprod = count_products(A, B).astype(np.float64)
    nnz_a = np.diff(A.rpt).astype(np.float64)
    c_bytes = 8.0 * (A.n_rows + 1) + (4.0 + p.value_bytes) * float(nprod.sum())
    work_bytes = float(stream_bytes_numeric(nnz_a, nprod, nprod, p).sum())
    return int(A.device_bytes(p) + B.device_bytes(p) + c_bytes + work_bytes)


def _digest_job(A: CSRMatrix, B: CSRMatrix, options: SpGEMMOptions) -> str:
    """Coalescing key: operand digests + the options' execution token."""
    h = hashlib.blake2b(digest_size=16)
    for a in (A.rpt, A.col, A.val, B.rpt, B.col, B.val):
        h.update(str(a.dtype).encode())
        h.update(a.tobytes())
    h.update(f"{A.shape}{B.shape}".encode())
    h.update(options.coalesce_token().encode())
    return h.hexdigest()


class ServedJob:
    """Handle of one submitted multiply: a future plus its audit trail."""

    def __init__(self, job_id: int, tenant: str, *, matrix_name: str = "",
                 deadline_s: float | None = None) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.matrix_name = matrix_name
        self.deadline_s = deadline_s
        self.status = QUEUED
        self.estimate_bytes = 0        #: cost-model working-set estimate
        self.admit_estimate = 0        #: bytes charged against the budget
        self.degraded = False
        self.degrade_reason = ""
        self.attempts = 0              #: execution attempts (1 = no retry)
        self.coalesced_with: int | None = None   #: leader job id
        self.followers: list[ServedJob] = []
        self.submitted_at = 0.0
        self.dispatched_at = 0.0
        self.finished_at = 0.0
        self.outcome = ""              #: terminal: completed/failed/timed_out
        self._future: Future = Future()
        # internal bookkeeping (server-owned)
        self._digest = ""
        self._payload = None           #: (A, B, options, faults)

    # -- future surface ----------------------------------------------------

    def result(self, timeout: float | None = None):
        """The :class:`~repro.base.SpGEMMResult`, or raises the job's
        typed error (:class:`~repro.errors.JobTimeoutError` etc.)."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None):
        return self._future.exception(timeout)

    def done(self) -> bool:
        return self._future.done()

    @property
    def queue_wait_s(self) -> float:
        return max(0.0, self.dispatched_at - self.submitted_at)

    @property
    def latency_s(self) -> float:
        return max(0.0, self.finished_at - self.submitted_at)


class SpGEMMServer:
    """Fault-tolerant multi-tenant serving front of ``repro.multiply``.

    Parameters
    ----------
    options:
        Base :class:`~repro.options.SpGEMMOptions` every job runs under
        (per-submit ``options`` override it).  ``devices`` here sizes
        the admission budget from the pool's combined capacity.
    n_workers:
        Concurrent executor threads (each keeps its own runner chain,
        so per-worker plan caches stay warm across jobs).
    policy:
        The :class:`~repro.serve.policy.ServePolicy` robustness knobs.
    tenant_weights:
        Mapping tenant -> fair-queue weight (default 1.0 each).
    faults:
        A server-level :class:`~repro.gpu.faults.FaultPlan` applied to
        every job (the chaos harness's storm); per-submit ``faults``
        take precedence for that job.
    clock / sleep:
        Injectable host clock and sleep (deterministic tests drive a
        manual clock; production uses ``time.monotonic`` / ``time.sleep``).
    observe_runs:
        Per-run trace events.  ``False`` executes every job unobserved
        (no per-kernel/per-charge event construction -- the throughput
        mode); ``True`` forces full traces; ``None`` (default) follows
        each job's ``options.observe``.  Server-level ``serve_*`` events
        and :meth:`metrics` are unaffected either way.
    """

    def __init__(self, *, options: SpGEMMOptions | None = None,
                 n_workers: int = 2, policy: ServePolicy | None = None,
                 tenant_weights: dict[str, float] | None = None,
                 faults: FaultPlan | None = None,
                 clock=time.monotonic, sleep=time.sleep,
                 observe_runs: bool | None = None) -> None:
        self.options = options or SpGEMMOptions()
        self.observe = observe_runs
        self.policy = policy or ServePolicy()
        self.faults = faults
        self._clock = clock
        self._sleep = sleep
        self._t0 = clock()
        self.events = EventBus()
        self.memory_budget_bytes = self._derive_budget()
        self.usable_budget_bytes = max(
            1, int(self.memory_budget_bytes * self.policy.admission_headroom))

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue = WeightedFairQueue(capacity=self.policy.max_queue_depth)
        for tenant, w in (tenant_weights or {}).items():
            self._queue.set_weight(tenant, w)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._inflight_by_digest: dict[str, ServedJob] = {}
        self._in_flight_bytes = 0
        self._running = 0
        self._stopping = False
        self._job_ids = itertools.count(1)
        self.jobs: list[ServedJob] = []   #: every accepted job, in order

        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"serve-w{i}",
                             daemon=True)
            for i in range(max(1, int(n_workers)))]
        for t in self._workers:
            t.start()

    # -- construction helpers ----------------------------------------------

    def _derive_budget(self) -> int:
        """Admission budget: policy override, else the device pool's
        combined capacity (:meth:`~repro.dist.pool.DevicePool.
        memory_bytes`), else the single device's."""
        if self.policy.memory_budget_bytes is not None:
            return int(self.policy.memory_budget_bytes)
        o = self.options
        if o.devices is None:
            return int(o.device.global_mem_bytes)
        from repro.dist.pool import DevicePool

        if isinstance(o.devices, tuple):
            pool = DevicePool.from_names(list(o.devices), engine=False)
        else:
            pool = DevicePool.uniform(int(o.devices), o.device, engine=False)
        return pool.memory_bytes()

    def _now(self) -> float:
        return self._clock()

    def _emit(self, kind: str, tenant: str, **attrs) -> None:
        """Publish one serve event at the current host time (lock held)."""
        self.events.emit(kind, tenant, self._now() - self._t0, **attrs)

    def _breaker(self, tenant: str) -> CircuitBreaker:
        b = self._breakers.get(tenant)
        if b is None:
            b = self._breakers[tenant] = CircuitBreaker(self.policy.breaker,
                                                        tenant=tenant)
        return b

    # -- submission ----------------------------------------------------------

    def submit(self, A: CSRMatrix, B: CSRMatrix, *, tenant: str = "default",
               deadline_s: float | None = None,
               options: SpGEMMOptions | None = None,
               matrix_name: str = "",
               faults: FaultPlan | None = None) -> ServedJob:
        """Enqueue ``C = A @ B`` for ``tenant``; returns a :class:`ServedJob`.

        Raises immediately (shedding load fast) with
        :class:`~repro.errors.CircuitOpenError` when the tenant's breaker
        is open or :class:`~repro.errors.ServerOverloadedError` when the
        bounded queue is full or the server is shut down; both rejections
        are still counted against the conservation law.
        """
        opts = options or self.options
        if deadline_s is None:
            deadline_s = self.policy.default_deadline_s
        job_faults = faults if faults is not None else self.faults
        with self._lock:
            job = ServedJob(next(self._job_ids), tenant,
                            matrix_name=matrix_name, deadline_s=deadline_s)
            job.submitted_at = self._now()
            job.estimate_bytes = estimate_job_bytes(A, B, opts.precision)
            self._emit(OBS.SERVE_SUBMIT, tenant, job=job.job_id,
                       estimate_bytes=job.estimate_bytes,
                       deadline_s=-1.0 if deadline_s is None else deadline_s)
            if self._stopping:
                self._reject(job, "closed",
                             ServerOverloadedError(
                                 "server is shut down", tenant=tenant,
                                 queue_depth=len(self._queue),
                                 max_queue_depth=self.policy.max_queue_depth))
            breaker = self._breaker(tenant)
            if not breaker.allow(self._now()):
                retry_after = breaker.retry_after(self._now())
                self._reject(job, "circuit_open", CircuitOpenError(
                    f"circuit open for tenant {tenant!r} "
                    f"(retry in {retry_after:.3f}s)", tenant=tenant,
                    retry_after_s=retry_after))
            # coalesce onto an identical queued/running job (skip jobs
            # carrying a per-submit fault plan: their failures are theirs)
            if self.policy.coalesce and faults is None:
                job._digest = _digest_job(A, B, opts)
                leader = self._inflight_by_digest.get(job._digest)
                if leader is not None and not leader.done():
                    job.coalesced_with = leader.job_id
                    leader.followers.append(job)
                    self.jobs.append(job)
                    self._emit(OBS.SERVE_COALESCE, tenant, job=job.job_id,
                               leader=leader.job_id)
                    return job
            if self._queue.full:
                self._reject(job, "overloaded", ServerOverloadedError(
                    f"queue full ({len(self._queue)}"
                    f"/{self.policy.max_queue_depth})", tenant=tenant,
                    queue_depth=len(self._queue),
                    max_queue_depth=self.policy.max_queue_depth))
            self._maybe_degrade(job)
            job._payload = (A, B, opts, job_faults)
            self._queue.push(job, tenant=tenant,
                             cost=float(job.estimate_bytes))
            if job._digest:
                self._inflight_by_digest[job._digest] = job
            self.jobs.append(job)
            self._cond.notify_all()
            return job

    def _reject(self, job: ServedJob, reason: str, error: Exception):
        """Record the shed load and raise (lock held)."""
        self._emit(OBS.SERVE_REJECT, job.tenant, job=job.job_id,
                   reason=reason)
        job.status = FAILED
        job.outcome = "rejected"
        job.finished_at = self._now()
        job._future.set_exception(error)
        self.jobs.append(job)
        raise error

    def _maybe_degrade(self, job: ServedJob) -> None:
        """Downgrade the admission to chunked/fallback execution when the
        job cannot fit, or the server is under sustained pressure."""
        reason = ""
        if job.estimate_bytes > self.usable_budget_bytes:
            reason = "over_budget"
        elif self._in_flight_bytes > (self.policy.degrade_memory_fraction
                                      * self.memory_budget_bytes):
            reason = "memory_pressure"
        elif len(self._queue) >= self.policy.degrade_queue_depth:
            reason = "queue_pressure"
        if reason:
            job.degraded = True
            job.degrade_reason = reason
            self._emit(OBS.SERVE_DEGRADE, job.tenant, job=job.job_id,
                       reason=reason)
        # the budget is charged with the *capped* estimate so a single
        # over-budget job cannot wedge admission forever
        job.admit_estimate = min(job.estimate_bytes, self.usable_budget_bytes)

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self) -> None:
        runners: dict[str, object] = {}   # per-worker, keyed by options token
        while True:
            job = self._next_job()
            if job is None:
                return
            self._execute(job, runners)

    def _next_job(self) -> ServedJob | None:
        """Block until a job is admissible (or shutdown); admits it."""
        with self._cond:
            while True:
                self._expire_queued()
                if self._stopping and len(self._queue) == 0:
                    return None
                job = self._queue.peek()
                if job is not None:
                    fits = (self._in_flight_bytes + job.admit_estimate
                            <= self.usable_budget_bytes)
                    if fits or self._running == 0:
                        self._queue.pop()
                        job.status = RUNNING
                        job.dispatched_at = self._now()
                        self._in_flight_bytes += job.admit_estimate
                        self._running += 1
                        self._emit(OBS.SERVE_ADMIT, job.tenant,
                                   job=job.job_id,
                                   queue_wait_s=job.queue_wait_s,
                                   queue_depth=len(self._queue),
                                   in_flight_bytes=self._in_flight_bytes)
                        return job
                self._cond.wait(timeout=_WAIT_POLL_S)

    def _expire_queued(self) -> None:
        """Fail queued jobs whose deadline passed (lock held)."""
        now = self._now()
        expired = [j for j in self._queue
                   if j.deadline_s is not None
                   and (j.deadline_s <= 0
                        or now - j.submitted_at > j.deadline_s)]
        for job in expired:
            self._queue.remove(job)
            self._finish_locked(job, TIMED_OUT, error=JobTimeoutError(
                f"job {job.job_id} missed its {job.deadline_s:.3f}s deadline "
                f"after waiting {now - job.submitted_at:.3f}s in queue",
                tenant=job.tenant, deadline_s=job.deadline_s or 0.0,
                waited_s=now - job.submitted_at), admitted=False)

    def _deadline_expired(self, job: ServedJob) -> JobTimeoutError | None:
        if job.deadline_s is None:
            return None
        waited = self._now() - job.submitted_at
        if job.deadline_s <= 0 or waited > job.deadline_s:
            return JobTimeoutError(
                f"job {job.job_id} missed its {job.deadline_s:.3f}s deadline "
                f"({waited:.3f}s elapsed)", tenant=job.tenant,
                deadline_s=job.deadline_s, waited_s=waited)
        return None

    def _execute(self, job: ServedJob, runners: dict) -> None:
        A, B, opts, faults = job._payload
        try:
            result = self._run_with_retries(job, A, B, opts, faults, runners)
        except JobTimeoutError as e:
            with self._lock:
                self._finish_locked(job, TIMED_OUT, error=e)
            return
        except Exception as e:   # typed ReproErrors and (bug) escapes alike
            with self._lock:
                self._finish_locked(job, FAILED, error=e)
            return
        with self._lock:
            self._finish_locked(job, COMPLETED, result=result)

    def _run_with_retries(self, job: ServedJob, A, B,
                          opts: SpGEMMOptions, faults, runners: dict):
        """One job through retry -> backoff -> resilience-ladder rungs."""
        retry = self.policy.retry
        attempt = 0
        while True:
            err = self._deadline_expired(job)
            if err is not None:
                raise err
            job.attempts += 1
            try:
                return self._run_once(job, A, B, opts, faults, runners)
            except RECOVERABLE as e:
                attempt += 1
                if attempt <= retry.max_retries:
                    backoff = retry.backoff_seconds(job.job_id, attempt)
                    with self._lock:
                        self._emit(OBS.SERVE_RETRY, job.tenant,
                                   job=job.job_id, attempt=attempt,
                                   backoff_s=backoff,
                                   error=type(e).__name__)
                    self._sleep(backoff)
                    continue
                if not job.degraded:
                    # last rung: hand the job to the resilience ladder
                    job.degraded = True
                    job.degrade_reason = "retry_exhausted"
                    with self._lock:
                        self._emit(OBS.SERVE_DEGRADE, job.tenant,
                                   job=job.job_id, reason="retry_exhausted")
                    err = self._deadline_expired(job)
                    if err is not None:
                        raise err
                    job.attempts += 1
                    return self._run_once(job, A, B, opts, faults, runners)
                raise

    def _run_once(self, job: ServedJob, A, B, opts: SpGEMMOptions,
                  faults, runners: dict):
        """One execution attempt; degraded jobs run the chunked ladder."""
        if job.degraded:
            opts = self._degraded_options(job, opts)
        token = opts.coalesce_token()
        runner = runners.get(token)
        if runner is None:
            runner = runners[token] = runner_for(opts)
        observed = self.observe if self.observe is not None else opts.observe
        # set inside the worker thread: contextvars do not cross threads
        with observe_runs(bool(observed)):
            return runner.multiply(A, B, precision=opts.precision,
                                   device=opts.device,
                                   matrix_name=job.matrix_name,
                                   faults=faults)

    def _degraded_options(self, job: ServedJob,
                          opts: SpGEMMOptions) -> SpGEMMOptions:
        """Chunked/fallback execution: single device, resilience ladder,
        budget capped at the job's admitted share.  Bit-identical output
        (both the dist and resilient layers preserve results exactly)."""
        budget = min(max(job.admit_estimate, 1),
                     int(opts.device.global_mem_bytes))
        return opts.evolve(devices=None, resilient=True,
                           memory_budget=budget)

    # -- completion ----------------------------------------------------------

    def _finish_locked(self, job: ServedJob, status: str, *, result=None,
                       error: Exception | None = None,
                       admitted: bool = True) -> None:
        """Terminal bookkeeping for a job and its coalesced followers."""
        if admitted and job.status == RUNNING:
            self._running -= 1
            self._in_flight_bytes -= job.admit_estimate
        job.status = status
        job.finished_at = self._now()
        job.outcome = {COMPLETED: "completed", FAILED: "failed",
                       TIMED_OUT: "timed_out"}[status]
        if job._digest and self._inflight_by_digest.get(job._digest) is job:
            del self._inflight_by_digest[job._digest]

        breaker = self._breaker(job.tenant)
        before = breaker.state
        if status == COMPLETED:
            breaker.record_success(self._now())
        elif status == FAILED:
            breaker.record_failure(self._now())
        if breaker.state != before:
            self._emit(OBS.SERVE_BREAKER, job.tenant, state=breaker.state,
                       **{"from": before})

        self._emit_terminal(job, result, error)
        if status == COMPLETED:
            job._future.set_result(result)
        else:
            job._future.set_exception(error)
        for follower in job.followers:
            follower.status = status
            follower.finished_at = job.finished_at
            follower.outcome = job.outcome
            self._emit_terminal(follower, result, error)
            if status == COMPLETED:
                follower._future.set_result(result)
            else:
                follower._future.set_exception(error)
        job.followers = []
        self._cond.notify_all()

    def _emit_terminal(self, job: ServedJob, result, error) -> None:
        if job.outcome == "timed_out":
            self._emit(OBS.SERVE_TIMEOUT, job.tenant, job=job.job_id,
                       waited_s=job.latency_s)
            return
        modeled = (result.report.total_seconds
                   if job.outcome == "completed" else 0.0)
        self._emit(OBS.SERVE_DONE, job.tenant, job=job.job_id,
                   outcome=job.outcome,
                   error=type(error).__name__ if error is not None else "",
                   modeled_seconds=modeled, latency_s=job.latency_s,
                   attempts=job.attempts, degraded=job.degraded,
                   coalesced=job.coalesced_with is not None)

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every accepted job reached a terminal state.

        Returns False when ``timeout`` (host seconds, real clock)
        expires first.  Draining does not stop the server.
        """
        end = time.monotonic() + timeout if timeout is not None else None
        with self._cond:
            while len(self._queue) > 0 or self._running > 0:
                remaining = _WAIT_POLL_S
                if end is not None:
                    remaining = min(remaining, end - time.monotonic())
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining)
        return True

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally finish the backlog first.

        With ``wait=False`` the queued backlog is shed with typed
        :class:`~repro.errors.ServerOverloadedError`\\ s (never silently
        dropped); running jobs still finish.
        """
        if wait:
            self.drain()
        with self._cond:
            self._stopping = True
            if not wait:
                for job in list(self._queue):
                    self._queue.remove(job)
                    self._emit(OBS.SERVE_REJECT, job.tenant, job=job.job_id,
                               reason="closed")
                    job.status = FAILED
                    job.outcome = "rejected"
                    job.finished_at = self._now()
                    job._future.set_exception(ServerOverloadedError(
                        "server shut down before dispatch",
                        tenant=job.tenant))
            self._cond.notify_all()
        for t in self._workers:
            t.join(timeout=30.0)

    def __enter__(self) -> "SpGEMMServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # -- observability -------------------------------------------------------

    def breaker_state(self, tenant: str) -> str:
        with self._lock:
            return self._breaker(tenant).state

    def metrics(self) -> MetricsRegistry:
        """The ``serve_*`` families over this server's event stream, plus
        point-in-time gauges (queue depth, in-flight bytes, breaker
        states).  Call after :meth:`drain` for a conservation-complete
        view."""
        with self._lock:
            reg = metrics_from_events(self.events.events)
            reg.gauge("serve_queue_depth",
                      "jobs waiting in the fair queue").set(len(self._queue))
            reg.gauge("serve_in_flight_bytes",
                      "admitted working-set estimates").set(
                self._in_flight_bytes)
            reg.gauge("serve_memory_budget_bytes",
                      "pool-derived admission budget").set(
                self.memory_budget_bytes)
            state = reg.gauge("serve_breaker_state",
                              "0 closed / 1 half-open / 2 open")
            for tenant, b in sorted(self._breakers.items()):
                state.set(STATE_VALUES[b.state], tenant=tenant)
            return reg

    def stats_summary(self) -> str:
        """One-paragraph text block (the CLI's ``serve`` report)."""
        reg = self.metrics()
        sub = reg.value("serve_jobs_total", outcome="submitted")
        parts = {o: reg.value("serve_jobs_total", outcome=o)
                 for o in ("completed", "rejected", "timed_out", "failed")}
        lat = reg._families.get("serve_latency_seconds")
        wait = reg._families.get("serve_queue_wait_seconds")
        lines = [
            f"serve: {sub:.0f} submitted -> "
            + "  ".join(f"{o} {n:.0f}" for o, n in parts.items()),
            f"  degraded {reg.total('serve_degraded_total'):.0f}  "
            f"retries {reg.total('serve_retries_total'):.0f}  "
            f"coalesced {reg.total('serve_coalesced_total'):.0f}  "
            f"breaker trips "
            f"{reg.total('serve_breaker_transitions_total', state='open'):.0f}",
            f"  budget {self.memory_budget_bytes / (1 << 30):.1f} GiB  "
            f"queue depth {len(self._queue)}",
        ]
        if lat is not None:
            lines.append(
                f"  latency p50 {lat.quantile(0.5) * 1e3:.2f} ms  "
                f"p99 {lat.quantile(0.99) * 1e3:.2f} ms  "
                f"queue-wait p99 "
                f"{(wait.quantile(0.99) if wait else 0.0) * 1e3:.2f} ms")
        return "\n".join(lines)
