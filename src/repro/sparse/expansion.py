"""Vectorized expansion of intermediate products.

``C = A @ B`` over CSR generates one *intermediate product*
``a_ik * b_kj`` per (nonzero of A, nonzero of the matching B row) pair.
This module materializes those products as flat arrays -- the "expansion"
phase of the ESC algorithm and the workhorse of the reference SpGEMM.  It is
also where Alg. 2 of the paper (per-row intermediate-product counts) lives.

The expansion is fully vectorized: no Python-level loop over rows.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.errors import ShapeMismatchError
from repro.types import INDEX_DTYPE


def check_multiplicable(A, B) -> None:
    """Raise unless ``A @ B`` is shape-compatible."""
    if A.n_cols != B.n_rows:
        raise ShapeMismatchError(
            f"cannot multiply {A.shape} by {B.shape}: inner dimensions differ")


def intermediate_product_counts(A, B) -> np.ndarray:
    """Per-row intermediate product counts of ``A @ B`` (paper Alg. 2).

    ``counts[i] = sum over nonzeros a_ik of row i of nnz(B row k)``.

    Requires only ``rpt_A``, ``col_A`` and ``rpt_B`` -- the same inputs the
    paper's kernel reads -- and is the upper bound on each output row's nnz.
    """
    check_multiplicable(A, B)
    b_row_nnz = np.diff(B.rpt)                     # nnz of every B row
    per_nonzero = b_row_nnz[A.col]                 # one count per A nonzero
    counts = np.zeros(A.n_rows, dtype=INDEX_DTYPE)
    nz_rows = np.diff(A.rpt) > 0
    starts = A.rpt[:-1][nz_rows]
    if starts.size:
        counts[nz_rows] = np.add.reduceat(per_nonzero, starts)
    return counts


class Expansion(NamedTuple):
    """Flat arrays of all intermediate products of ``A @ B``.

    Attributes
    ----------
    rows: output-row index of each product.
    cols: output-column index of each product (``col_B`` of the B entry).
    vals: ``a_ik * b_kj`` for each product.
    row_counts: per-row product counts (Alg. 2 result), for grouping/stats.
    """

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    row_counts: np.ndarray

    @property
    def n_products(self) -> int:
        """Total number of intermediate products."""
        return int(self.rows.shape[0])


def expand_products(A, B, *, with_values: bool = True) -> Expansion:
    """Materialize every intermediate product of ``A @ B``.

    For each nonzero ``a_ik`` (position ``j`` in A's arrays) the products
    against B row ``k = col_A[j]`` occupy a contiguous run.  The flat index
    into B's arrays for the ``t``-th product of run ``j`` is
    ``rpt_B[k] + t``; runs are laid out back to back.

    ``with_values=False`` skips the value multiply (symbolic-only callers).
    """
    check_multiplicable(A, B)
    b_row_nnz = np.diff(B.rpt)
    run_len = b_row_nnz[A.col]                       # products per A nonzero
    total = int(run_len.sum())
    row_counts = np.zeros(A.n_rows, dtype=INDEX_DTYPE)
    nz_rows = np.diff(A.rpt) > 0
    starts = A.rpt[:-1][nz_rows]
    if starts.size:
        row_counts[nz_rows] = np.add.reduceat(run_len, starts)

    if total == 0:
        empty_i = np.empty(0, dtype=INDEX_DTYPE)
        empty_v = np.empty(0, dtype=A.dtype)
        return Expansion(empty_i, empty_i.copy(),
                         empty_v if with_values else empty_v, row_counts)

    # position of each product within its run: global arange minus the
    # repeated run start offset
    run_offsets = np.concatenate(([0], np.cumsum(run_len)[:-1]))
    within = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(run_offsets, run_len)
    b_flat = np.repeat(B.rpt[A.col], run_len) + within   # index into B arrays

    a_rows = np.repeat(np.arange(A.n_rows, dtype=INDEX_DTYPE), np.diff(A.rpt))
    rows = np.repeat(a_rows, run_len)
    cols = B.col[b_flat]
    if with_values:
        vals = np.repeat(A.val, run_len) * B.val[b_flat]
    else:
        vals = np.empty(0, dtype=A.dtype)
    return Expansion(rows, cols, vals, row_counts)


class SortRecipe(NamedTuple):
    """The value-independent part of one expansion + contraction.

    For a fixed pair of sparsity patterns, the lexsort permutation, the
    duplicate-run boundaries and the output-CSR structure never change --
    only the multiplied values do.  A recipe captures all of it, so a
    later multiply with fresh values on the same patterns reduces to a
    gather, an elementwise multiply and one ``np.add.reduceat``
    (:func:`values_from_recipe`), bit-identical to re-running
    :func:`expand_products` + :func:`contract` from scratch.

    Attributes
    ----------
    a_idx / b_idx: per intermediate product (in (row, col)-sorted order),
        the flat index of the contributing A and B nonzero.
    starts: ``reduceat`` boundaries of the duplicate runs.
    rpt / col: the output-CSR structure.
    row_counts: Alg. 2 per-row product counts.
    shape: output shape.
    """

    a_idx: np.ndarray
    b_idx: np.ndarray
    starts: np.ndarray
    rpt: np.ndarray
    col: np.ndarray
    row_counts: np.ndarray
    shape: tuple[int, int]

    @property
    def n_products(self) -> int:
        """Total intermediate products."""
        return int(self.a_idx.shape[0])

    def nbytes(self) -> int:
        """Host memory retained by the recipe (cache accounting)."""
        return sum(int(a.nbytes) for a in
                   (self.a_idx, self.b_idx, self.starts, self.rpt,
                    self.col, self.row_counts))


def build_sort_recipe(A, B) -> SortRecipe:
    """Capture the sort/merge structure of ``A @ B`` (values untouched).

    The per-product A index is position ``j`` repeated over run ``j``'s
    length and the B index is the same ``b_flat`` the expansion gathers;
    both are then permuted by the (row, col) lexsort that
    :func:`contract` would apply, so gathering values through them and
    reducing at ``starts`` reproduces the contraction exactly.
    """
    check_multiplicable(A, B)
    shape = (A.n_rows, B.n_cols)
    b_row_nnz = np.diff(B.rpt)
    run_len = b_row_nnz[A.col]
    total = int(run_len.sum())
    row_counts = np.zeros(A.n_rows, dtype=INDEX_DTYPE)
    nz_rows = np.diff(A.rpt) > 0
    a_starts = A.rpt[:-1][nz_rows]
    if a_starts.size:
        row_counts[nz_rows] = np.add.reduceat(run_len, a_starts)

    empty_i = np.empty(0, dtype=INDEX_DTYPE)
    if total == 0:
        rpt = np.zeros(A.n_rows + 1, dtype=INDEX_DTYPE)
        return SortRecipe(empty_i, empty_i.copy(), empty_i.copy(), rpt,
                          empty_i.copy(), row_counts, shape)

    run_offsets = np.concatenate(([0], np.cumsum(run_len)[:-1]))
    within = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(run_offsets, run_len)
    b_flat = np.repeat(B.rpt[A.col], run_len) + within
    a_flat = np.repeat(np.arange(A.col.shape[0], dtype=INDEX_DTYPE), run_len)

    a_rows = np.repeat(np.arange(A.n_rows, dtype=INDEX_DTYPE), np.diff(A.rpt))
    rows = np.repeat(a_rows, run_len)
    cols = B.col[b_flat]

    # rows are nondecreasing by construction, so a single stable argsort
    # of the fused (row, col) key equals lexsort((cols, rows)) -- same
    # permutation, one sort pass instead of two.  Guard the fusion
    # against int64 overflow for pathological shapes.
    if A.n_rows * B.n_cols < 2**62:
        order = np.argsort(rows * np.int64(B.n_cols) + cols, kind="stable")
    else:   # pragma: no cover - needs a >2^31-column matrix
        order = np.lexsort((cols, rows))
    r, c = rows[order], cols[order]
    new_run = np.empty(r.shape[0], dtype=bool)
    new_run[0] = True
    new_run[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
    starts = np.flatnonzero(new_run)
    out_col = c[starts]
    counts = np.bincount(r[starts], minlength=A.n_rows)
    rpt = np.zeros(A.n_rows + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=rpt[1:])
    return SortRecipe(a_flat[order], b_flat[order], starts, rpt, out_col,
                      row_counts, shape)


def values_from_recipe(recipe: SortRecipe, A, B) -> np.ndarray:
    """Output values (float64) of ``A @ B`` along a captured recipe.

    Bit-identical to the :func:`expand_products` + :func:`contract` pair:
    the same value pairs are multiplied in the same operand dtype, cast
    to float64, and reduced over the same boundaries in the same order --
    only the lexsort itself is skipped.
    """
    if recipe.n_products == 0:
        return np.empty(0, dtype=np.float64)
    v = (A.val[recipe.a_idx] * B.val[recipe.b_idx]).astype(np.float64,
                                                           copy=False)
    return np.add.reduceat(v, recipe.starts)


def contract(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray,
             shape: tuple[int, int], dtype: np.dtype):
    """Sort products by (row, col) and sum duplicates into canonical CSR.

    The "S" and "C" of ESC.  Returns a :class:`~repro.sparse.csr.CSRMatrix`.
    """
    from repro.sparse.csr import CSRMatrix

    n_rows = shape[0]
    if rows.shape[0] == 0:
        m = CSRMatrix.empty(shape)
        m.val = m.val.astype(dtype)
        return m
    order = np.lexsort((cols, rows))
    r, c, v = rows[order], cols[order], vals[order]
    new_run = np.empty(r.shape[0], dtype=bool)
    new_run[0] = True
    new_run[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
    starts = np.flatnonzero(new_run)
    out_val = np.add.reduceat(v.astype(np.float64), starts).astype(dtype)
    out_col = c[starts]
    counts = np.bincount(r[starts], minlength=n_rows)
    rpt = np.zeros(n_rows + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=rpt[1:])
    return CSRMatrix(rpt, out_col, out_val, shape, check=False)


def symbolic_row_nnz(A, B) -> np.ndarray:
    """Exact output nnz per row of ``A @ B`` (duplicates merged), vectorized.

    Used as an oracle for the hash-based symbolic phase: counts distinct
    columns per output row via a sorted unique over the expansion.
    """
    exp = expand_products(A, B, with_values=False)
    if exp.n_products == 0:
        return np.zeros(A.n_rows, dtype=INDEX_DTYPE)
    order = np.lexsort((exp.cols, exp.rows))
    r, c = exp.rows[order], exp.cols[order]
    new_run = np.empty(r.shape[0], dtype=bool)
    new_run[0] = True
    new_run[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
    return np.bincount(r[new_run], minlength=A.n_rows).astype(INDEX_DTYPE)
