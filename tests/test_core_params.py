"""Group-parameter tests: Table I must be reproduced exactly for the P100."""

import pytest

from repro.core.params import (ASSIGN_GLOBAL, ASSIGN_PWARP, ASSIGN_TB,
                               build_group_table, pow2_floor)
from repro.errors import DeviceConfigError
from repro.gpu.device import K40, P100

#: Table I of the paper, verbatim:
#: (gid, products lo, products hi, nnz lo, nnz hi, assignment, threads, #TB)
TABLE_I = [
    (0, 8193, None, 4097, None, "TB/ROW", 1024, 2),
    (1, 4097, 8192, 2049, 4096, "TB/ROW", 1024, 2),
    (2, 2049, 4096, 1025, 2048, "TB/ROW", 512, 4),
    (3, 1025, 2048, 513, 1024, "TB/ROW", 256, 8),
    (4, 513, 1024, 257, 512, "TB/ROW", 128, 16),
    (5, 33, 512, 17, 256, "TB/ROW", 64, 32),
    (6, 0, 32, 0, 16, "PWARP/ROW", 512, 4),
]


class TestTableI:
    @pytest.fixture(scope="class")
    def table(self):
        return build_group_table(P100)

    def test_group_count(self, table):
        assert len(table) == 7

    @pytest.mark.parametrize("row", TABLE_I, ids=[f"g{r[0]}" for r in TABLE_I])
    def test_each_row(self, table, row):
        gid, plo, phi, nlo, nhi, assign, threads, tb = row
        g = table[gid]
        assert g.gid == gid
        assert g.min_products == plo
        assert g.max_products == phi
        assert g.min_nnz == nlo
        assert g.max_nnz == nhi
        assert g.block_threads == threads
        assert g.nominal_blocks_per_sm == tb
        shown = "TB/ROW" if g.assignment in (ASSIGN_TB, ASSIGN_GLOBAL) \
            else g.assignment
        assert shown == assign

    def test_table_sizes_power_of_two(self, table):
        for g in table:
            assert g.table_symbolic & (g.table_symbolic - 1) == 0
            assert g.table_numeric & (g.table_numeric - 1) == 0

    def test_symbolic_tables_double_numeric(self, table):
        for g in table:
            if g.assignment == ASSIGN_TB or g.assignment == ASSIGN_GLOBAL:
                assert g.table_symbolic == 2 * g.table_numeric

    def test_largest_numeric_table_fits_48kb_double(self, table):
        # Section III-D: t_size = 48KB / 12B = 4096
        assert table.max_shared_table_numeric == 4096
        assert table.max_shared_table_numeric * 12 <= P100.max_shared_per_block

    def test_group0_uses_global_tables(self, table):
        assert table[0].uses_global_table
        assert not any(g.uses_global_table for g in table if g.gid != 0)

    def test_pwarp_group_geometry(self, table):
        pw = table.pwarp_group
        assert pw.assignment == ASSIGN_PWARP
        assert pw.pwarp_width == 4          # Section III-B preliminary sweep
        assert pw.rows_per_block == 128

    def test_render_contains_all_groups(self, table):
        text = table.render()
        assert "PWARP/ROW" in text
        assert text.count("TB/ROW") == 6


class TestCoverage:
    """The groups must partition every possible count."""

    @pytest.fixture(scope="class")
    def table(self):
        return build_group_table(P100)

    @pytest.mark.parametrize("metric,lo_attr,hi_attr", [
        ("products", "min_products", "max_products"),
        ("nnz", "min_nnz", "max_nnz"),
    ])
    def test_ranges_cover_all_counts(self, table, metric, lo_attr, hi_attr):
        probes = list(range(0, 20000, 7)) + [10 ** 9]
        for value in probes:
            holders = [g.gid for g in table
                       if getattr(g, lo_attr) <= value
                       and (getattr(g, hi_attr) is None
                            or value <= getattr(g, hi_attr))]
            assert holders, f"{metric}={value} not covered"

    def test_tb_ranges_disjoint(self, table):
        tb = [g for g in table if g.assignment == ASSIGN_TB]
        for a in tb:
            for b in tb:
                if a.gid >= b.gid:
                    continue
                assert a.max_nnz < b.min_nnz or b.max_nnz < a.min_nnz


class TestOtherConfigurations:
    def test_k40_table_valid(self):
        table = build_group_table(K40)
        # K40: 48 KB shared / 12 B = 4096 -> same largest table
        assert table.max_shared_table_numeric == 4096
        assert len(table) >= 3

    def test_pwarp_width_override(self):
        t8 = build_group_table(P100, pwarp_width=8)
        assert t8.pwarp_group.rows_per_block == 64

    def test_pwarp_width_bounds(self):
        with pytest.raises(DeviceConfigError):
            build_group_table(P100, pwarp_width=0)
        with pytest.raises(DeviceConfigError):
            build_group_table(P100, pwarp_width=64)

    def test_tiny_shared_memory_rejected(self):
        import dataclasses

        dev = dataclasses.replace(P100, shared_mem_per_sm=512,
                                  max_shared_per_block=256)
        with pytest.raises(DeviceConfigError):
            build_group_table(dev)


def test_pow2_floor():
    assert pow2_floor(1) == 1
    assert pow2_floor(4096) == 4096
    assert pow2_floor(5000) == 4096
    with pytest.raises(ValueError):
        pow2_floor(0)
