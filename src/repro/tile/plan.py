"""Kernel builders, tiled sketches and cost hooks for the tile algorithm.

The pipeline follows the TileSpGEMM recipe (Niu et al.; the pem-spgemm
exemplar): CSR -> tiled conversion for both operands (charged to the
modeled timeline like pem-spgemm's ``csr2tile`` kernels), then three
steps -- (1) tile-pair matching along the inner tile dimension, (2)
per-C-tile accumulator selection by density (dense / bitmap / sorted
list), (3) numeric tile products plus tiled -> CSR assembly.  Every
builder takes *bare per-tile-row arrays* (not matrices), so the
autotuner can score the same builders on a reconstructed
:class:`TileSketch` -- :func:`modeled_tile_total` is the tile analogue
of :func:`repro.tune.tuner.modeled_total`.

The family's defining cost contrast with the hash proposal: **no kernel
carries global atomics** (``gmem_atomics`` is zero across the pipeline;
all accumulation is tile-local in shared memory), and scattered B-row
gathers are replaced by per-pair tile payload streams -- a win exactly
when tiles are dense, a loss when the pattern scatters one entry per
tile and the conversion + pair-matching overhead has nothing to
amortize against.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.count_products import chunk_sums
from repro.gpu.cost import kernel_duration_alone
from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import BlockWorks, KernelLaunch
from repro.sparse.csr import CSRMatrix
from repro.sparse.product import product_for
from repro.tile.format import TiledCSR
from repro.tile.params import (DEFAULT_DENSE_FRAC, DEFAULT_LIST_FRAC,
                               DEFAULT_TILE_SIZE, TileParams)
from repro.types import Precision

#: Tiles per thread block of the conversion kernels.
CONVERT_TILES_PER_BLOCK = 64

#: Accumulator classes of step 2 (index = class id in stats records).
ACC_CLASSES = ("list", "bitmap", "dense")

#: Shared-memory word cost per accumulated product, by accumulator class
#: (dense: one indexed store; bitmap: test-and-set plus compaction;
#: sorted list: handled separately via log2 of the tile occupancy).
_DENSE_OPS = 1.0
_BITMAP_OPS = 2.0

#: Density-histogram resolution of :class:`TileSketch`.
_HIST_BINS = 16


# -- parameter resolvers ------------------------------------------------------


def tile_size_for(params: TileParams) -> int:
    """The effective tile edge (default 16)."""
    if params.tile_size is None:
        return DEFAULT_TILE_SIZE
    return max(2, min(64, int(params.tile_size)))


def cutoffs_for(params: TileParams) -> tuple[float, float]:
    """``(dense_frac, list_frac)`` accumulator-selection cutoffs."""
    dense = (DEFAULT_DENSE_FRAC if params.dense_frac is None
             else float(params.dense_frac))
    lst = (DEFAULT_LIST_FRAC if params.list_frac is None
           else float(params.list_frac))
    return dense, lst


def tile_shared_bytes(tile: int, precision: Precision | str,
                      spec: DeviceSpec) -> int:
    """Shared memory per block: one dense tile accumulator plus the
    occupancy bitmap, capped at the device's per-block limit."""
    p = Precision.parse(precision)
    need = tile * tile * p.value_bytes + tile * tile // 8 + 64
    return min(need, spec.max_shared_per_block)


def _block_threads(tile: int) -> int:
    """One thread per tile cell, clamped to a sane CUDA block."""
    return max(32, min(256, tile * tile))


def _segment_sums(values: np.ndarray, rpt: np.ndarray) -> np.ndarray:
    """Sum ``values`` over the segments delimited by ``rpt``."""
    out = np.zeros(rpt.shape[0] - 1, dtype=np.float64)
    if values.size:
        nz = np.diff(rpt) > 0
        out[nz] = np.add.reduceat(np.asarray(values, dtype=np.float64),
                                  rpt[:-1][nz])
    return out


# -- per-instance tile statistics --------------------------------------------


@dataclass
class TileStats:
    """Everything the kernels and events need about one tiled instance.

    All per-``trow`` arrays are indexed by C tile row (= A tile row);
    ``pairs`` counts the candidate tile pairs step 1 scans -- for every
    A tile ``(I, K)``, the nonempty B tiles of tile row ``K``.
    """

    ta: TiledCSR                 #: tiled A
    tb: TiledCSR                 #: tiled B
    tc: TiledCSR                 #: tiled C (output pattern)
    a_ent: np.ndarray            #: A entries per tile row
    a_tiles: np.ndarray          #: nonempty A tiles per tile row
    pairs: np.ndarray            #: candidate tile pairs per tile row
    products: np.ndarray         #: intermediate products per tile row
    c_tiles: np.ndarray          #: nonempty C tiles per tile row
    c_nnz: np.ndarray            #: C entries per tile row
    acc_ops: np.ndarray          #: accumulator shared ops per tile row
    acc_class: np.ndarray        #: per-C-tile class id (0 list/1 bitmap/2 dense)
    b_avg_entries: float         #: mean entries per nonempty B tile

    @property
    def total_pairs(self) -> int:
        return int(self.pairs.sum())

    def class_records(self) -> list[dict]:
        """Step-2 selection stats, one record per accumulator class
        (rendered through the existing GROUPING/HASH_STATS consumers)."""
        dens = self.tc.density()
        nnz = self.tc.tile_nnz()
        recs = []
        for cid, cname in enumerate(ACC_CLASSES):
            sel = self.acc_class == cid
            if not bool(sel.any()):
                continue
            recs.append({
                "group": cid, "assign": f"TILE/{cname.upper()}",
                "rows": int(sel.sum()), "tiles": int(sel.sum()),
                "tables": int(sel.sum()),
                "table_entries": int(self.tc.tile * self.tc.tile),
                "count_min": int(nnz[sel].min()),
                "count_max": int(nnz[sel].max()),
                "load_mean": float(dens[sel].mean()),
                "load_max": float(dens[sel].max()),
            })
        return recs


def classify_tiles(tc: TiledCSR, params: TileParams) -> np.ndarray:
    """Step 2's per-C-tile accumulator class (0 list, 1 bitmap, 2 dense)."""
    dense_frac, list_frac = cutoffs_for(params)
    dens = tc.density()
    cls = np.ones(tc.n_tiles, dtype=np.int64)          # bitmap
    cls[dens <= list_frac] = 0                         # sorted list
    cls[dens >= dense_frac] = 2                        # dense accumulator
    return cls


def acc_factors(acc_class: np.ndarray, tile_nnz: np.ndarray,
                tile: int) -> np.ndarray:
    """Shared-memory ops per product landing in each C tile."""
    f = np.where(acc_class == 2, _DENSE_OPS, _BITMAP_OPS)
    lst = acc_class == 0
    if bool(lst.any()):
        f = f.astype(np.float64)
        f[lst] = np.log2(np.maximum(2.0, tile_nnz[lst].astype(np.float64)))
    return f


def tile_stats(A: CSRMatrix, B: CSRMatrix, C: CSRMatrix,
               row_products: np.ndarray, params: TileParams) -> TileStats:
    """Tile all three matrices and derive the per-tile-row work arrays."""
    tile = tile_size_for(params)
    ta = TiledCSR.from_csr(A, tile)
    tb = TiledCSR.from_csr(B, tile)
    tc = TiledCSR.from_csr(C, tile)

    b_cnt = tb.tiles_per_row().astype(np.float64)
    # candidate pairs: every A tile (I, K) meets the nonempty B tiles of
    # tile row K; summed per A tile row without materializing the pairs
    pairs_per_a_tile = b_cnt[ta.tile_col]
    pairs = _segment_sums(pairs_per_a_tile, ta.tile_rpt)
    a_ent = _segment_sums(ta.tile_nnz(), ta.tile_rpt)
    a_tiles = ta.tiles_per_row().astype(np.float64)

    c_tiles = tc.tiles_per_row().astype(np.float64)
    c_nnz = _segment_sums(tc.tile_nnz(), tc.tile_rpt)
    prod = chunk_sums(np.asarray(row_products, dtype=np.float64), tile)
    if prod.shape[0] < tc.tile_rows:            # trailing empty tile rows
        prod = np.pad(prod, (0, tc.tile_rows - prod.shape[0]))

    # accumulator ops: distribute each tile row's products over its C
    # tiles proportionally to tile nnz, weighted by the class factor
    acc_class = classify_tiles(tc, params)
    factors = acc_factors(acc_class, tc.tile_nnz(), tile)
    share = np.zeros(tc.tile_rows, dtype=np.float64)
    np.divide(prod, c_nnz, out=share, where=c_nnz > 0)
    per_tile_ops = (np.repeat(share, tc.tiles_per_row())
                    * tc.tile_nnz() * factors)
    acc_ops = _segment_sums(per_tile_ops, tc.tile_rpt)

    return TileStats(
        ta=ta, tb=tb, tc=tc, a_ent=a_ent, a_tiles=a_tiles, pairs=pairs,
        products=prod, c_tiles=c_tiles, c_nnz=c_nnz, acc_ops=acc_ops,
        acc_class=acc_class,
        b_avg_entries=tb.nnz / max(1, tb.n_tiles))


# -- kernel builders ----------------------------------------------------------


def convert_kernel(name: str, tile_nnz: np.ndarray, precision: Precision | str,
                   *, stream: int = 0,
                   phase: str = "setup") -> KernelLaunch | None:
    """CSR -> TiledCSR conversion of one operand (pem-spgemm's csr2tile):
    stream the CSR entries, bin them by tile id, write tile-local
    coordinates plus per-tile metadata.  No atomics: per-block tile
    ranges are disjoint by construction of the sort."""
    e = np.asarray(tile_nnz, dtype=np.float64)
    if e.size == 0:
        return None
    vb = Precision.parse(precision).value_bytes
    works = BlockWorks(
        flops=chunk_sums(4.0 * e, CONVERT_TILES_PER_BLOCK),
        shared_ops=chunk_sums(2.0 * e, CONVERT_TILES_PER_BLOCK),
        gmem_coalesced_bytes=chunk_sums((6.0 + 2.0 * vb) * e + 24.0,
                                        CONVERT_TILES_PER_BLOCK),
        gmem_random=chunk_sums(np.ones_like(e), CONVERT_TILES_PER_BLOCK),
    )
    return KernelLaunch(name=name, block_threads=128,
                        shared_bytes_per_block=0, works=works, stream=stream,
                        phase=phase)


def tile_match_kernel(a_tiles: np.ndarray, pairs: np.ndarray, *,
                      stream: int = 0,
                      phase: str = "count") -> KernelLaunch | None:
    """Step 1: per C tile row, intersect A's tile list with B's tile
    rows (mask tests in shared memory) and emit the matched pair list."""
    a_tiles = np.asarray(a_tiles, dtype=np.float64)
    if a_tiles.size == 0:
        return None
    pairs = np.asarray(pairs, dtype=np.float64)
    works = BlockWorks(
        flops=pairs,
        shared_ops=2.0 * pairs + 4.0 * a_tiles,
        gmem_coalesced_bytes=8.0 * a_tiles + 8.0 * pairs + 8.0,
        gmem_random=a_tiles,                 # B tile-row extents
    )
    return KernelLaunch(name="tile_match", block_threads=128,
                        shared_bytes_per_block=2048, works=works,
                        stream=stream, phase=phase)


def tile_select_kernel(pairs: np.ndarray, c_tiles: np.ndarray, *,
                       stream: int = 0,
                       phase: str = "count") -> KernelLaunch | None:
    """Step 2: fold each pair's occupancy masks into the C tile's
    density estimate and pick the accumulator class -- a pure
    mask-arithmetic pass, no tables, no atomics."""
    pairs = np.asarray(pairs, dtype=np.float64)
    if pairs.size == 0:
        return None
    c_tiles = np.asarray(c_tiles, dtype=np.float64)
    works = BlockWorks(
        flops=pairs + 2.0 * c_tiles,
        shared_ops=2.0 * c_tiles,
        gmem_coalesced_bytes=16.0 * pairs + 16.0 * c_tiles,
    )
    return KernelLaunch(name="tile_select", block_threads=128,
                        shared_bytes_per_block=1024, works=works,
                        stream=stream, phase=phase)


def tile_numeric_kernel(stats_arrays: dict, tile: int,
                        precision: Precision | str, spec: DeviceSpec, *,
                        stream: int = 0,
                        phase: str = "calc") -> KernelLaunch | None:
    """Step 3: per C tile row, stream the matched pairs' tile payloads
    and accumulate into the selected per-tile accumulator in shared
    memory.  Coalesced payload reads replace the hash family's
    scattered B-row gathers, and there are **no global atomics** --
    each block owns its C tiles outright.

    ``stats_arrays`` carries ``a_ent`` / ``pairs`` / ``products`` /
    ``c_nnz`` / ``acc_ops`` per tile row plus the scalar
    ``b_avg_entries`` (see :class:`TileStats`).
    """
    prod = np.asarray(stats_arrays["products"], dtype=np.float64)
    if prod.size == 0:
        return None
    vb = Precision.parse(precision).value_bytes
    a_ent = np.asarray(stats_arrays["a_ent"], dtype=np.float64)
    pairs = np.asarray(stats_arrays["pairs"], dtype=np.float64)
    c_nnz = np.asarray(stats_arrays["c_nnz"], dtype=np.float64)
    acc_ops = np.asarray(stats_arrays["acc_ops"], dtype=np.float64)
    b_avg = float(stats_arrays["b_avg_entries"])
    payload = (2.0 + vb) * (a_ent + pairs * b_avg + c_nnz)
    works = BlockWorks(
        flops=2.0 * prod + acc_ops,
        shared_ops=2.0 * prod + acc_ops,
        gmem_coalesced_bytes=payload + 8.0 * pairs,
        gmem_random=pairs,                   # B tile header fetches
    )
    return KernelLaunch(name="tile_numeric",
                        block_threads=_block_threads(tile),
                        shared_bytes_per_block=tile_shared_bytes(
                            tile, precision, spec),
                        works=works, stream=stream, phase=phase)


def tile_assemble_kernel(c_nnz: np.ndarray, precision: Precision | str, *,
                         stream: int = 0,
                         phase: str = "calc") -> KernelLaunch | None:
    """Tiled -> CSR assembly: expand tile-local coordinates back to
    global CSR order and write the output arrays (pure streaming)."""
    c_nnz = np.asarray(c_nnz, dtype=np.float64)
    if c_nnz.size == 0:
        return None
    vb = Precision.parse(precision).value_bytes
    works = BlockWorks(
        flops=c_nnz,
        gmem_coalesced_bytes=(6.0 + 2.0 * vb) * c_nnz + 8.0,
    )
    return KernelLaunch(name="tile_assemble", block_threads=128,
                        shared_bytes_per_block=0, works=works,
                        stream=stream, phase=phase)


def build_pipeline_kernels(stats: TileStats, tile: int,
                           precision: Precision | str,
                           spec: DeviceSpec) -> dict:
    """All pipeline kernels for one instance, keyed by stage.

    ``conversion`` holds up to two launches (A on stream 0, B on stream
    1 -- they overlap); the other stages hold one launch or ``None``.
    """
    conv = [k for k in (
        convert_kernel("tile_convert_a", stats.ta.tile_nnz(), precision,
                       stream=0),
        convert_kernel("tile_convert_b", stats.tb.tile_nnz(), precision,
                       stream=1),
    ) if k is not None]
    arrays = {"a_ent": stats.a_ent, "pairs": stats.pairs,
              "products": stats.products, "c_nnz": stats.c_nnz,
              "acc_ops": stats.acc_ops,
              "b_avg_entries": stats.b_avg_entries}
    return {
        "conversion": conv,
        "match": tile_match_kernel(stats.a_tiles, stats.pairs),
        "select": tile_select_kernel(stats.pairs, stats.c_tiles),
        "numeric": tile_numeric_kernel(arrays, tile, precision, spec),
        "assemble": tile_assemble_kernel(stats.c_nnz, precision),
    }


# -- the tiled sketch ---------------------------------------------------------


@dataclass(frozen=True)
class TileSketch:
    """Log2-bucketed tile-row histogram of one SpGEMM instance.

    The hash family's :class:`~repro.tune.sketch.MatrixSketch` is blind
    to tile locality (two patterns with identical row histograms can
    tile completely differently), so the tile family sketches per *tile
    row*: ``buckets[k]`` covers tile rows whose product count has
    ``bit_length() == k``, each row storing ``(tile_rows, a_entries,
    a_tiles, pairs, products, c_tiles, c_nnz)``.  ``density_hist`` adds
    the per-C-tile fill histogram step 2's accumulator mix is computed
    from.  The digest is namespaced, so tile-family tuning-store entries
    never collide with hash-family entries for the same matrix.
    """

    shape: tuple[int, int]
    tile: int
    nnz_a: int
    nnz_b: int
    a_tiles: int
    b_tiles: int
    buckets: np.ndarray            #: (K, 7) int64
    density_hist: np.ndarray       #: (_HIST_BINS, 2) int64: tiles, nnz

    @property
    def n_products(self) -> int:
        return int(self.buckets[:, 4].sum())

    @property
    def nnz_out(self) -> int:
        return int(self.buckets[:, 6].sum())

    def digest(self) -> str:
        """Stable hex digest keying the tuning store (namespaced so the
        tile family never shares entries with the hash family)."""
        h = hashlib.sha256()
        h.update(b"tile-sketch/")
        h.update(np.asarray([*self.shape, self.tile, self.nnz_a, self.nnz_b,
                             self.a_tiles, self.b_tiles],
                            dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(self.buckets,
                                      dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(self.density_hist,
                                      dtype=np.int64).tobytes())
        return h.hexdigest()[:16]

    def reconstruct(self) -> dict:
        """Representative per-tile-row arrays (bucket means, like
        :meth:`~repro.tune.sketch.MatrixSketch.reconstruct`)."""
        rows = self.buckets[:, 0]
        out = {}
        names = ("a_ent", "a_tiles", "pairs", "products", "c_tiles", "c_nnz")
        for i, name in enumerate(names, start=1):
            means = np.zeros(rows.shape[0], dtype=np.float64)
            np.divide(self.buckets[:, i], np.maximum(rows, 1), out=means,
                      where=rows > 0)
            out[name] = np.repeat(np.ceil(means), rows)
        return out


def sketch_tiles(A: CSRMatrix, B: CSRMatrix,
                 params: TileParams | None = None) -> TileSketch:
    """Sketch the tiled instance (reuses the cached functional product,
    like :func:`~repro.tune.sketch.sketch_matrix`)."""
    params = params or TileParams()
    row_products, C = product_for(A, B, Precision.DOUBLE)
    stats = tile_stats(A, B, C, row_products, params)
    tile = stats.tc.tile

    prod = stats.products.astype(np.int64)
    k = np.zeros(prod.shape[0], dtype=np.int64)
    pos = prod > 0
    k[pos] = np.floor(np.log2(prod[pos])).astype(np.int64) + 1
    n_buckets = int(k.max(initial=0)) + 1
    buckets = np.zeros((n_buckets, 7), dtype=np.int64)
    np.add.at(buckets[:, 0], k, 1)
    for i, arr in enumerate((stats.a_ent, stats.a_tiles, stats.pairs,
                             stats.products, stats.c_tiles, stats.c_nnz),
                            start=1):
        np.add.at(buckets[:, i], k, arr.astype(np.int64))

    dens_bin = np.minimum((stats.tc.density() * _HIST_BINS).astype(np.int64),
                          _HIST_BINS - 1)
    density_hist = np.zeros((_HIST_BINS, 2), dtype=np.int64)
    np.add.at(density_hist[:, 0], dens_bin, 1)
    np.add.at(density_hist[:, 1], dens_bin, stats.tc.tile_nnz())

    return TileSketch(shape=(A.n_rows, B.n_cols), tile=tile,
                      nnz_a=A.nnz, nnz_b=B.nnz,
                      a_tiles=stats.ta.n_tiles, b_tiles=stats.tb.n_tiles,
                      buckets=buckets, density_hist=density_hist)


# -- the autotuner's hooks ----------------------------------------------------


def candidate_space(spec: DeviceSpec) -> list[TileParams]:
    """The tile search grid: accumulator-selection cutoffs.

    Candidate 0 is the all-default :class:`TileParams`.  ``tile_size``
    is not searched -- it changes the tiled sketch itself, so one
    sketch cannot score multiple tile edges.
    """
    dense_axis = [None, 0.25, 0.75]
    list_axis = [None, 0.0625, 0.25]
    out, seen = [], set()
    for d in dense_axis:
        for lo in list_axis:
            ov = TileParams(dense_frac=d, list_frac=lo)
            if ov.switches() not in seen:
                seen.add(ov.switches())
                out.append(ov)
    return out


def modeled_tile_total(sketch: TileSketch, spec: DeviceSpec,
                       precision: Precision | str,
                       params: TileParams) -> float:
    """Analytic objective on a tiled sketch: modeled conversion +
    pipeline seconds.  Returns ``inf`` for configurations the sketch
    cannot score (a foreign tile edge, inverted cutoffs)."""
    p = Precision.parse(precision)
    tile = tile_size_for(params)
    if tile != sketch.tile:
        return float("inf")
    dense_frac, list_frac = cutoffs_for(params)
    if not (0.0 <= list_frac <= dense_frac <= 1.0):
        return float("inf")

    arrays = sketch.reconstruct()
    # accumulator mix from the density histogram at these cutoffs
    mids = (np.arange(_HIST_BINS) + 0.5) / _HIST_BINS
    factors = np.full(_HIST_BINS, _BITMAP_OPS)
    factors[mids >= dense_frac] = _DENSE_OPS
    lst = mids <= list_frac
    factors[lst] = np.log2(np.maximum(2.0, mids[lst] * tile * tile))
    hist_nnz = sketch.density_hist[:, 1].astype(np.float64)
    total_nnz = float(hist_nnz.sum())
    mean_factor = (float((hist_nnz * factors).sum()) / total_nnz
                   if total_nnz > 0 else _BITMAP_OPS)
    arrays["acc_ops"] = arrays["products"] * mean_factor
    arrays["b_avg_entries"] = sketch.nnz_b / max(1, sketch.b_tiles)

    a_tile_nnz = np.full(max(1, sketch.a_tiles),
                         sketch.nnz_a / max(1, sketch.a_tiles))
    b_tile_nnz = np.full(max(1, sketch.b_tiles),
                         sketch.nnz_b / max(1, sketch.b_tiles))
    conv = [convert_kernel("tile_convert_a", a_tile_nnz, p),
            convert_kernel("tile_convert_b", b_tile_nnz, p, stream=1)]
    serial = [
        tile_match_kernel(arrays["a_tiles"], arrays["pairs"]),
        tile_select_kernel(arrays["pairs"], arrays["c_tiles"]),
        tile_numeric_kernel(arrays, tile, p, spec),
        tile_assemble_kernel(arrays["c_nnz"], p),
    ]
    total = max((kernel_duration_alone(k, spec, p)
                 for k in conv if k is not None), default=0.0)
    total += sum(kernel_duration_alone(k, spec, p)
                 for k in serial if k is not None)
    return total


def select_algorithm(A: CSRMatrix, B: CSRMatrix, device: DeviceSpec,
                     precision: Precision | str,
                     params: TileParams | None = None
                     ) -> tuple[str, float, float]:
    """Pick ``'tile'`` or ``'proposal'`` for an instance from the two
    families' sketch objectives (the E22 crossover selector).

    Returns ``(winner, tile_seconds, hash_seconds)``.  Both objectives
    cover the phases their cost models make comparable: the hash side
    scores count + calc (its conversion-free pipeline), the tile side
    scores conversion + the three steps.
    """
    from repro.core.params import ParamOverrides
    from repro.tune.tuner import modeled_total
    from repro.tune.sketch import sketch_matrix

    params = params or TileParams()
    p = Precision.parse(precision)
    hash_seconds = modeled_total(sketch_matrix(A, B), device, p,
                                 ParamOverrides())
    tile_seconds = modeled_tile_total(sketch_tiles(A, B, params), device, p,
                                      params)
    winner = "tile" if tile_seconds < hash_seconds else "proposal"
    return winner, tile_seconds, hash_seconds
